// Transport layer tests: rate controllers (Robbins-Monro Eq. 1, AIMD),
// goodput metering, reliable message delivery under loss, stream
// stabilization, and EPB estimation (Eq. 3).
#include <gtest/gtest.h>

#include <memory>

#include "netsim/cross_traffic.hpp"
#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "transport/datagram_transport.hpp"
#include "transport/epb.hpp"
#include "transport/goodput_meter.hpp"
#include "transport/rate_controller.hpp"
#include "util/stats.hpp"

namespace ns = ricsa::netsim;
namespace tp = ricsa::transport;

// --------------------------------------------------------- GoodputMeter ----

TEST(GoodputMeter, WindowedRate) {
  tp::GoodputMeter meter(1.0);
  meter.record(0.0, 1000);
  meter.record(0.5, 1000);
  // Only 0.5 s observed so far: 2000 bytes over 0.5 s, not over the full
  // (not yet elapsed) 1 s window.
  EXPECT_DOUBLE_EQ(meter.rate(0.5), 4000.0);
  // At t=1.2 the first event (t=0) has left the 1 s window.
  EXPECT_DOUBLE_EQ(meter.rate(1.2), 1000.0);
  EXPECT_DOUBLE_EQ(meter.rate(5.0), 0.0);
  EXPECT_EQ(meter.total_bytes(), 2000u);
}

TEST(GoodputMeter, WarmUpDividesByElapsedNotFullWindow) {
  // Regression: rate() used to divide by the full window even before a full
  // window had elapsed, underestimating goodput during warm-up — which
  // would mis-tier every freshly connected client of the web layer.
  tp::GoodputMeter meter(2.0);
  EXPECT_DOUBLE_EQ(meter.rate(0.0), 0.0);  // no records yet
  meter.record(10.0, 1000);
  meter.record(10.5, 1000);
  // 0.5 s observed: 2000 bytes / 0.5 s, not 2000 / 2.0 = 1000 B/s.
  EXPECT_DOUBLE_EQ(meter.rate(10.5), 4000.0);
  EXPECT_DOUBLE_EQ(meter.rate(11.0), 2000.0);
  // Once a full window has elapsed the divisor caps at the window; by
  // t=12.5 the t=10.0 event has also left the 2 s window.
  EXPECT_DOUBLE_EQ(meter.rate(12.5), 1000.0 / 2.0);
  // A burst recorded "right now" reads optimistically fast, never 0/0.
  tp::GoodputMeter fresh(1.0);
  fresh.record(3.0, 500);
  EXPECT_GT(fresh.rate(3.0), 1e5);
}

// ------------------------------------------------------- RmsaController ----

TEST(Rmsa, IncreasesRateWhenBelowTarget) {
  tp::RmsaConfig cfg;
  cfg.target_Bps = 1e6;
  cfg.initial_sleep_s = 0.1;
  tp::RmsaController ctrl(cfg);
  const double before = ctrl.sleep_time();
  ctrl.update({.goodput_Bps = 1e5, .loss_detected = false});
  EXPECT_LT(ctrl.sleep_time(), before);  // goodput below target -> sleep less
}

TEST(Rmsa, DecreasesRateWhenAboveTarget) {
  tp::RmsaConfig cfg;
  cfg.target_Bps = 1e5;
  cfg.initial_sleep_s = 0.01;
  tp::RmsaController ctrl(cfg);
  const double before = ctrl.sleep_time();
  ctrl.update({.goodput_Bps = 1e6, .loss_detected = false});
  EXPECT_GT(ctrl.sleep_time(), before);
}

TEST(Rmsa, FixedPointAtTarget) {
  tp::RmsaConfig cfg;
  cfg.target_Bps = 5e5;
  cfg.initial_sleep_s = 0.05;
  tp::RmsaController ctrl(cfg);
  const double before = ctrl.sleep_time();
  ctrl.update({.goodput_Bps = 5e5, .loss_detected = false});
  EXPECT_DOUBLE_EQ(ctrl.sleep_time(), before);  // zero error -> no move
}

TEST(Rmsa, GainDecaysOverSteps) {
  // Same error applied twice: the second correction must be smaller
  // (Robbins-Monro a_n = a / n^alpha is strictly decreasing).
  tp::RmsaConfig cfg;
  cfg.target_Bps = 1e6;
  cfg.initial_sleep_s = 0.1;
  cfg.alpha = 1.0;
  tp::RmsaController ctrl(cfg);
  const double s0 = ctrl.sleep_time();
  ctrl.update({.goodput_Bps = 0.9e6});
  const double s1 = ctrl.sleep_time();
  ctrl.update({.goodput_Bps = 0.9e6});
  const double s2 = ctrl.sleep_time();
  const double delta1 = 1.0 / s1 - 1.0 / s0;
  const double delta2 = 1.0 / s2 - 1.0 / s1;
  EXPECT_GT(delta1, 0.0);
  EXPECT_GT(delta2, 0.0);
  EXPECT_LT(delta2, delta1);
}

TEST(Rmsa, SleepStaysWithinBounds) {
  tp::RmsaConfig cfg;
  cfg.target_Bps = 1e6;
  cfg.min_sleep_s = 1e-3;
  cfg.max_sleep_s = 0.5;
  tp::RmsaController ctrl(cfg);
  for (int i = 0; i < 50; ++i) ctrl.update({.goodput_Bps = 0.0});
  EXPECT_GE(ctrl.sleep_time(), cfg.min_sleep_s);
  for (int i = 0; i < 50; ++i) ctrl.update({.goodput_Bps = 1e9});
  EXPECT_LE(ctrl.sleep_time(), cfg.max_sleep_s);
}

TEST(Rmsa, ConvergesInClosedLoopModel) {
  // Analytic closed loop: goodput responds instantly as
  // g = min(window_payload / Ts, capacity) * (1 - loss).
  tp::RmsaConfig cfg;
  cfg.target_Bps = 4e5;
  cfg.initial_sleep_s = 0.5;
  tp::RmsaController ctrl(cfg);
  const double payload = 32.0 * 1400.0;
  const double capacity = 1e6;
  const double loss = 0.02;
  double g = 0.0;
  for (int i = 0; i < 300; ++i) {
    const double source = payload / ctrl.sleep_time();
    g = std::min(source, capacity) * (1.0 - loss);
    ctrl.update({.goodput_Bps = g, .loss_detected = false});
  }
  EXPECT_NEAR(g, 4e5, 4e4);  // within 10% of g*
}

TEST(Rmsa, TargetRetargetingTracks) {
  tp::RmsaConfig cfg;
  cfg.target_Bps = 2e5;
  cfg.gain_floor = 0.05;  // keep enough gain to track the change
  tp::RmsaController ctrl(cfg);
  const double payload = 32.0 * 1400.0;
  double g = 0.0;
  for (int i = 0; i < 200; ++i) {
    g = payload / ctrl.sleep_time();
    ctrl.update({.goodput_Bps = g});
  }
  EXPECT_NEAR(g, 2e5, 2e4);
  ctrl.set_target(6e5);
  for (int i = 0; i < 400; ++i) {
    g = payload / ctrl.sleep_time();
    ctrl.update({.goodput_Bps = g});
  }
  EXPECT_NEAR(g, 6e5, 6e4);
}

// ------------------------------------------------------- AimdController ----

TEST(Aimd, SawtoothDynamics) {
  tp::AimdConfig cfg;
  cfg.initial_rate_Bps = 4e5;
  tp::AimdController ctrl(cfg);
  ctrl.update({.goodput_Bps = 4e5, .loss_detected = false});
  EXPECT_DOUBLE_EQ(ctrl.rate(), 5e5);  // +1e5 additive increase
  ctrl.update({.goodput_Bps = 5e5, .loss_detected = true});
  EXPECT_DOUBLE_EQ(ctrl.rate(), 2.5e5);  // halved on loss
}

TEST(Aimd, RateBounds) {
  tp::AimdConfig cfg;
  cfg.min_rate_Bps = 1e5;
  cfg.max_rate_Bps = 1e6;
  tp::AimdController ctrl(cfg);
  for (int i = 0; i < 100; ++i) ctrl.update({.loss_detected = true});
  EXPECT_DOUBLE_EQ(ctrl.rate(), 1e5);
  for (int i = 0; i < 100; ++i) ctrl.update({.loss_detected = false});
  EXPECT_DOUBLE_EQ(ctrl.rate(), 1e6);
}

// ------------------------------------------------- Reliable message mode ----

namespace {
struct TwoNodeNet {
  ns::Simulator sim;
  ns::Network net{sim, 77};
  ns::NodeId a, b;
  TwoNodeNet(double bw = 1e6, double delay = 0.01, double loss = 0.0,
             std::size_t queue = 512 * 1024) {
    a = net.add_node({.name = "A"});
    b = net.add_node({.name = "B"});
    ns::LinkConfig cfg;
    cfg.bandwidth_Bps = bw;
    cfg.prop_delay_s = delay;
    cfg.random_loss = loss;
    cfg.queue_capacity_bytes = queue;
    net.add_duplex(a, b, cfg);
  }
};

std::unique_ptr<tp::RateController> fast_rmsa(double target) {
  tp::RmsaConfig cfg;
  cfg.target_Bps = target;
  cfg.initial_sleep_s = 0.01;
  return std::make_unique<tp::RmsaController>(cfg);
}
}  // namespace

TEST(MessageMode, LosslessDeliveryCompletes) {
  TwoNodeNet w(2e6, 0.01);
  double completed_at = -1;
  auto flow = tp::make_message_flow(w.net, w.a, w.b, 500 * 1000,
                                    fast_rmsa(2e6),
                                    [&](ns::SimTime t) { completed_at = t; });
  w.sim.run();
  ASSERT_GT(completed_at, 0.0);
  // 500 KB over a 2 MB/s link: at least 0.25 s, with pacing overhead < 4 s.
  EXPECT_GE(completed_at, 0.25);
  EXPECT_LT(completed_at, 4.0);
  EXPECT_EQ(flow.sender->stats().retransmissions, 0u);
}

TEST(MessageMode, ZeroByteMessageStillCompletes) {
  TwoNodeNet w;
  bool done = false;
  auto flow = tp::make_message_flow(w.net, w.a, w.b, 0, fast_rmsa(1e6),
                                    [&](ns::SimTime) { done = true; });
  w.sim.run();
  EXPECT_TRUE(done);
}

TEST(MessageMode, DeliversDespiteHeavyLoss) {
  TwoNodeNet w(2e6, 0.005, /*loss=*/0.10);
  double completed_at = -1;
  auto flow = tp::make_message_flow(w.net, w.a, w.b, 200 * 1000,
                                    fast_rmsa(1.5e6),
                                    [&](ns::SimTime t) { completed_at = t; });
  w.sim.run();
  ASSERT_GT(completed_at, 0.0) << "transfer must complete under 10% loss";
  EXPECT_GT(flow.sender->stats().retransmissions, 0u);
  EXPECT_EQ(flow.receiver->cumulative_ack(),
            flow.sender->datagram_count(200 * 1000));
}

TEST(MessageMode, ReceiverCountsDuplicates) {
  // With loss and retransmission, some datagrams arrive twice; the receiver
  // must not double-count them in goodput ("ignoring the duplicates").
  TwoNodeNet w(2e6, 0.005, 0.15);
  double completed_at = -1;
  auto flow = tp::make_message_flow(w.net, w.a, w.b, 100 * 1000,
                                    fast_rmsa(1.5e6),
                                    [&](ns::SimTime t) { completed_at = t; });
  w.sim.run();
  ASSERT_GT(completed_at, 0.0);
  const auto expected = flow.sender->datagram_count(100 * 1000);
  // Unique payload bytes metered == datagrams * payload exactly.
  EXPECT_EQ(flow.receiver->stats().datagrams_received -
                flow.receiver->stats().duplicates,
            expected);
}

TEST(MessageMode, CompletionTimeScalesWithSize) {
  const auto transfer_time = [](std::size_t bytes) {
    TwoNodeNet w(4e6, 0.01);
    double completed_at = -1;
    auto flow = tp::make_message_flow(w.net, w.a, w.b, bytes, fast_rmsa(4e6),
                                      [&](ns::SimTime t) { completed_at = t; });
    w.sim.run();
    return completed_at;
  };
  const double t1 = transfer_time(250 * 1000);
  const double t2 = transfer_time(1000 * 1000);
  EXPECT_GT(t2, 2.0 * t1);  // 4x data should take >2x time
}

// ----------------------------------------------------------- Stream mode ----

TEST(StreamMode, RmsaStabilizesAtTargetGoodput) {
  TwoNodeNet w(2e6, 0.01, /*loss=*/0.01);
  const double target = 6e5;
  const int data_port = tp::allocate_port();
  const int ack_port = tp::allocate_port();
  tp::FlowConfig fc;
  tp::TransportReceiver rx(w.net, w.b, data_port, w.a, ack_port, fc);
  tp::RmsaConfig rc;
  rc.target_Bps = target;
  rc.initial_sleep_s = 0.2;  // start well below target rate
  tp::TransportSender tx(w.net, w.a, w.b, data_port, ack_port, fc,
                         std::make_unique<tp::RmsaController>(rc));
  tx.start_stream();

  // Sample goodput every 100 ms between t=20s and t=40s (post-convergence).
  ricsa::util::RunningStats post;
  for (double t = 20.0; t <= 40.0; t += 0.1) {
    w.sim.run_until(t);
    post.add(rx.goodput(w.sim.now()));
  }
  tx.stop();
  EXPECT_NEAR(post.mean(), target, 0.15 * target);
  EXPECT_LT(post.cv(), 0.2);  // low jitter post-convergence
}

TEST(StreamMode, RmsaLowerJitterThanAimd) {
  const auto run_cv = [](bool use_rmsa) {
    TwoNodeNet w(1.5e6, 0.02, 0.005, 128 * 1024);
    const int data_port = tp::allocate_port();
    const int ack_port = tp::allocate_port();
    tp::FlowConfig fc;
    tp::TransportReceiver rx(w.net, w.b, data_port, w.a, ack_port, fc);
    std::unique_ptr<tp::RateController> ctrl;
    if (use_rmsa) {
      tp::RmsaConfig rc;
      rc.target_Bps = 6e5;
      ctrl = std::make_unique<tp::RmsaController>(rc);
    } else {
      tp::AimdConfig ac;
      ac.increase_Bps = 2e5;  // aggressive probing -> classic sawtooth
      ctrl = std::make_unique<tp::AimdController>(ac);
    }
    tp::TransportSender tx(w.net, w.a, w.b, data_port, ack_port, fc,
                           std::move(ctrl));
    tx.start_stream();
    ricsa::util::RunningStats post;
    for (double t = 15.0; t <= 45.0; t += 0.1) {
      w.sim.run_until(t);
      post.add(rx.goodput(w.sim.now()));
    }
    tx.stop();
    return post.cv();
  };
  const double cv_rmsa = run_cv(true);
  const double cv_aimd = run_cv(false);
  EXPECT_LT(cv_rmsa, cv_aimd)
      << "stochastic-approximation channel must be smoother than AIMD";
  EXPECT_LT(cv_rmsa, 0.25);
}

TEST(StreamMode, SurvivesCrossTraffic) {
  TwoNodeNet w(2e6, 0.01, 0.001, 256 * 1024);
  ns::CrossTrafficConfig ct_cfg;
  ct_cfg.on_load = 0.3;
  ns::CrossTraffic ct(w.sim, w.net.link(w.a, w.b), ct_cfg, 555);
  ct.start();

  const int data_port = tp::allocate_port();
  const int ack_port = tp::allocate_port();
  tp::FlowConfig fc;
  tp::TransportReceiver rx(w.net, w.b, data_port, w.a, ack_port, fc);
  tp::RmsaConfig rc;
  rc.target_Bps = 5e5;
  tp::TransportSender tx(w.net, w.a, w.b, data_port, ack_port, fc,
                         std::make_unique<tp::RmsaController>(rc));
  tx.start_stream();

  ricsa::util::RunningStats post;
  for (double t = 20.0; t <= 40.0; t += 0.2) {
    w.sim.run_until(t);
    post.add(rx.goodput(w.sim.now()));
  }
  tx.stop();
  ct.stop();
  EXPECT_NEAR(post.mean(), 5e5, 1e5);
}

// ------------------------------------------------------------------ EPB ----

TEST(Epb, PureFitRecoversSlopeAndIntercept) {
  std::vector<std::pair<std::size_t, double>> samples;
  const double epb = 2e6, d0 = 0.04;
  for (std::size_t r : {100000u, 300000u, 700000u, 1500000u}) {
    samples.emplace_back(r, static_cast<double>(r) / epb + d0);
  }
  const tp::EpbResult fit = tp::fit_epb(samples);
  EXPECT_NEAR(fit.epb_Bps, epb, 1e-3 * epb);
  EXPECT_NEAR(fit.min_delay_s, d0, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Epb, EmptyAndDegenerateSamples) {
  EXPECT_EQ(tp::fit_epb({}).epb_Bps, 0.0);
  EXPECT_EQ(tp::fit_epb({{100, 0.1}}).epb_Bps, 0.0);
}

TEST(Epb, ActiveMeasurementApproximatesLinkBandwidth) {
  // Probes ride an AIMD flow over a clean 4 MB/s link; the estimate should
  // land in the right ballpark (pacing overhead biases it low).
  TwoNodeNet w(4e6, 0.02);
  tp::EpbOptions opt;
  opt.repeats = 1;
  tp::EpbEstimator est(w.net, w.a, w.b, opt);
  tp::EpbResult result;
  bool done = false;
  est.run([&](const tp::EpbResult& r) {
    result = r;
    done = true;
  });
  w.sim.run();
  ASSERT_TRUE(done);
  EXPECT_GT(result.epb_Bps, 0.8e6);
  EXPECT_LT(result.epb_Bps, 4.5e6);
  EXPECT_GT(result.r_squared, 0.9) << "delay must be near-linear in size";
}

TEST(Epb, RankOrdersLinksByBandwidth) {
  const auto measure = [](double bw) {
    TwoNodeNet w(bw, 0.02);
    tp::EpbOptions opt;
    opt.repeats = 1;
    tp::EpbEstimator est(w.net, w.a, w.b, opt);
    double epb = 0;
    bool done = false;
    est.run([&](const tp::EpbResult& r) {
      epb = r.epb_Bps;
      done = true;
    });
    w.sim.run();
    EXPECT_TRUE(done);
    return epb;
  };
  EXPECT_GT(measure(8e6), measure(2e6));
}
