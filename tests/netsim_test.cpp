// Unit tests for the discrete-event WAN simulator: event ordering, link
// serialization/queueing/loss mechanics, topology bookkeeping, cross traffic
// and the six-site testbed.
#include <gtest/gtest.h>

#include <vector>

#include "netsim/cross_traffic.hpp"
#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "netsim/testbed.hpp"

namespace ns = ricsa::netsim;

// ----------------------------------------------------------- Simulator ----

TEST(Simulator, ExecutesInTimeOrder) {
  ns::Simulator sim;
  std::vector<int> order;
  sim.at(2.0, [&] { order.push_back(2); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(3.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, FifoTieBreakAtEqualTimes) {
  ns::Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NestedScheduling) {
  ns::Simulator sim;
  double fired_at = -1;
  sim.at(1.0, [&] {
    sim.after(0.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(Simulator, RunUntilAdvancesClock) {
  ns::Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(5.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsPastScheduling) {
  ns::Simulator sim;
  sim.at(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(0.5, [] {}), std::invalid_argument);
}

TEST(Simulator, NegativeDelayClamped) {
  ns::Simulator sim;
  double t = -1;
  sim.after(-5.0, [&] { t = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(t, 0.0);
}

// ----------------------------------------------------------------- Link ----

namespace {
ns::LinkConfig basic_link(double bw = 1e6, double delay = 0.01) {
  ns::LinkConfig c;
  c.bandwidth_Bps = bw;
  c.prop_delay_s = delay;
  c.random_loss = 0.0;
  return c;
}
}  // namespace

TEST(Link, SerializationPlusPropagationDelay) {
  ns::Simulator sim;
  ns::Link link(sim, basic_link(1e6, 0.05), 1);
  double arrive = -1;
  ns::Packet p;
  p.wire_bytes = 100000;  // 0.1 s at 1 MB/s
  link.send(p, [&](const ns::Packet&) { arrive = sim.now(); });
  sim.run();
  EXPECT_NEAR(arrive, 0.1 + 0.05, 1e-9);
}

TEST(Link, BackToBackPacketsQueueBehindEachOther) {
  ns::Simulator sim;
  ns::Link link(sim, basic_link(1e6, 0.0), 1);
  std::vector<double> arrivals;
  for (int i = 0; i < 3; ++i) {
    ns::Packet p;
    p.wire_bytes = 100000;
    link.send(p, [&](const ns::Packet&) { arrivals.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR(arrivals[0], 0.1, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.2, 1e-9);
  EXPECT_NEAR(arrivals[2], 0.3, 1e-9);
}

TEST(Link, QueueOverflowDrops) {
  ns::Simulator sim;
  ns::LinkConfig cfg = basic_link(1e3, 0.0);  // slow: queue builds up
  cfg.queue_capacity_bytes = 2500;
  ns::Link link(sim, cfg, 1);
  int delivered = 0;
  for (int i = 0; i < 5; ++i) {
    ns::Packet p;
    p.wire_bytes = 1000;
    link.send(p, [&](const ns::Packet&) { ++delivered; });
  }
  sim.run();
  EXPECT_EQ(delivered, 2);  // capacity 2500 admits two 1000-byte packets
  EXPECT_EQ(link.stats().dropped_queue, 3u);
  EXPECT_EQ(link.queued_bytes(), 0u);  // fully drained afterwards
}

TEST(Link, RandomLossRate) {
  ns::Simulator sim;
  ns::LinkConfig cfg = basic_link(1e9, 0.0);
  cfg.random_loss = 0.25;
  cfg.queue_capacity_bytes = 1u << 30;
  ns::Link link(sim, cfg, 99);
  int delivered = 0;
  const int total = 20000;
  for (int i = 0; i < total; ++i) {
    ns::Packet p;
    p.wire_bytes = 100;
    link.send(p, [&](const ns::Packet&) { ++delivered; });
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(delivered) / total, 0.75, 0.02);
  EXPECT_EQ(link.stats().dropped_random + static_cast<std::uint64_t>(delivered),
            static_cast<std::uint64_t>(total));
}

TEST(Link, BurstLossModelLosesMoreThanUniform) {
  ns::Simulator sim;
  ns::LinkConfig cfg = basic_link(1e9, 0.0);
  cfg.random_loss = 0.001;
  cfg.burst_model = true;
  cfg.burst_loss = 0.5;
  cfg.mean_good_s = 0.01;
  cfg.mean_bad_s = 0.01;  // half the time in bad state
  cfg.queue_capacity_bytes = 1u << 30;
  ns::Link link(sim, cfg, 7);
  int delivered = 0;
  const int total = 20000;
  for (int i = 0; i < total; ++i) {
    ns::Packet p;
    p.wire_bytes = 1000;
    link.send(p, [&](const ns::Packet&) { ++delivered; });
    sim.run();  // space packets out in time so the chain advances
  }
  const double loss = 1.0 - static_cast<double>(delivered) / total;
  EXPECT_GT(loss, 0.05);
  EXPECT_LT(loss, 0.45);
}

TEST(Link, DeterministicAcrossRunsWithSameSeed) {
  const auto run = [](std::uint64_t seed) {
    ns::Simulator sim;
    ns::LinkConfig cfg = basic_link(1e6, 0.01);
    cfg.random_loss = 0.1;
    ns::Link link(sim, cfg, seed);
    int delivered = 0;
    for (int i = 0; i < 500; ++i) {
      ns::Packet p;
      p.wire_bytes = 500;
      link.send(p, [&](const ns::Packet&) { ++delivered; });
    }
    sim.run();
    return delivered;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // overwhelmingly likely
}

TEST(Link, LiveReconfiguration) {
  ns::Simulator sim;
  ns::Link link(sim, basic_link(1e6, 0.0), 1);
  link.set_bandwidth(2e6);
  double arrive = -1;
  ns::Packet p;
  p.wire_bytes = 200000;
  link.send(p, [&](const ns::Packet&) { arrive = sim.now(); });
  sim.run();
  EXPECT_NEAR(arrive, 0.1, 1e-9);
}

// -------------------------------------------------------------- Network ----

TEST(Network, TopologyBookkeeping) {
  ns::Simulator sim;
  ns::Network net(sim);
  const auto a = net.add_node({.name = "A", .power = 1.0});
  const auto b = net.add_node({.name = "B", .power = 2.0});
  const auto c = net.add_node({.name = "C", .power = 3.0});
  net.add_duplex(a, b, basic_link());
  net.add_link(b, c, basic_link());

  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_EQ(net.link_count(), 3u);
  EXPECT_TRUE(net.has_link(a, b));
  EXPECT_TRUE(net.has_link(b, a));
  EXPECT_TRUE(net.has_link(b, c));
  EXPECT_FALSE(net.has_link(c, b));
  EXPECT_EQ(net.find_node("B"), b);
  EXPECT_THROW(net.find_node("Z"), std::out_of_range);
  EXPECT_EQ(net.node(b).power, 2.0);

  const auto into_c = net.neighbors_in(c);
  ASSERT_EQ(into_c.size(), 1u);
  EXPECT_EQ(into_c[0], b);
  const auto out_b = net.neighbors_out(b);
  EXPECT_EQ(out_b.size(), 2u);
}

TEST(Network, DeliversToRegisteredHandler) {
  ns::Simulator sim;
  ns::Network net(sim);
  const auto a = net.add_node({.name = "A"});
  const auto b = net.add_node({.name = "B"});
  net.add_link(a, b, basic_link(1e6, 0.01));

  int got_port_1 = 0, got_port_2 = 0;
  net.listen(b, 1, [&](const ns::Packet&) { ++got_port_1; });
  net.listen(b, 2, [&](const ns::Packet&) { ++got_port_2; });

  ns::Packet p;
  p.src = a;
  p.dst = b;
  p.port = 1;
  p.wire_bytes = 100;
  net.send(p);
  p.port = 2;
  net.send(p);
  p.port = 9;  // no handler
  net.send(p);
  sim.run();

  EXPECT_EQ(got_port_1, 1);
  EXPECT_EQ(got_port_2, 1);
  EXPECT_EQ(net.undeliverable(), 1u);
}

TEST(Network, SendWithoutLinkThrows) {
  ns::Simulator sim;
  ns::Network net(sim);
  const auto a = net.add_node({.name = "A"});
  const auto b = net.add_node({.name = "B"});
  ns::Packet p;
  p.src = a;
  p.dst = b;
  EXPECT_THROW(net.send(p), std::out_of_range);
}

TEST(Network, UnlistenStopsDelivery) {
  ns::Simulator sim;
  ns::Network net(sim);
  const auto a = net.add_node({.name = "A"});
  const auto b = net.add_node({.name = "B"});
  net.add_link(a, b, basic_link());
  int got = 0;
  net.listen(b, 1, [&](const ns::Packet&) { ++got; });
  net.unlisten(b, 1);
  ns::Packet p;
  p.src = a;
  p.dst = b;
  p.port = 1;
  p.wire_bytes = 10;
  net.send(p);
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.undeliverable(), 1u);
}

// -------------------------------------------------------- CrossTraffic ----

TEST(CrossTraffic, ConsumesLinkCapacity) {
  ns::Simulator sim;
  ns::Link link(sim, basic_link(1e6, 0.0), 3);
  ns::CrossTrafficConfig cfg;
  cfg.on_load = 0.5;
  cfg.mean_on_s = 100.0;  // effectively always on
  cfg.mean_off_s = 0.001;
  ns::CrossTraffic ct(sim, link, cfg, 17);
  ct.start();
  sim.run_until(10.0);
  ct.stop();
  // ~0.5 * 1e6 B/s * 10 s / 1500 B = ~3333 packets.
  EXPECT_GT(ct.injected_packets(), 2000u);
  EXPECT_LT(ct.injected_packets(), 5000u);
}

TEST(CrossTraffic, OffStateInjectsLittle) {
  ns::Simulator sim;
  ns::Link link(sim, basic_link(1e6, 0.0), 3);
  ns::CrossTrafficConfig cfg;
  cfg.on_load = 0.5;
  cfg.mean_on_s = 1e-4;
  cfg.mean_off_s = 1000.0;  // almost always off
  ns::CrossTraffic ct(sim, link, cfg, 23);
  ct.start();
  sim.run_until(10.0);
  ct.stop();
  EXPECT_LT(ct.injected_packets(), 200u);
}

// ------------------------------------------------------------- Testbed ----

TEST(Testbed, SixSitesWithExpectedRoles) {
  ns::Testbed tb = ns::make_testbed();
  EXPECT_EQ(tb.net->node_count(), 6u);
  EXPECT_TRUE(tb.net->node(tb.ornl).has_gpu);
  EXPECT_FALSE(tb.net->node(tb.gatech).has_gpu);
  EXPECT_FALSE(tb.net->node(tb.osu).has_gpu);
  EXPECT_GT(tb.net->node(tb.ut).power, tb.net->node(tb.ornl).power);
  EXPECT_GT(tb.net->node(tb.ut).parallel_workers, 1);
  EXPECT_EQ(tb.net->find_node("NCState"), tb.ncstate);
}

TEST(Testbed, PaperTopologyLinksExist) {
  ns::Testbed tb = ns::make_testbed();
  // Control path of the optimal loop: ORNL -> LSU -> GaTech.
  EXPECT_TRUE(tb.net->has_link(tb.ornl, tb.lsu));
  EXPECT_TRUE(tb.net->has_link(tb.lsu, tb.gatech));
  // Data path of the optimal loop: GaTech -> UT -> ORNL.
  EXPECT_TRUE(tb.net->has_link(tb.gatech, tb.ut));
  EXPECT_TRUE(tb.net->has_link(tb.ut, tb.ornl));
  // PC-PC loops.
  EXPECT_TRUE(tb.net->has_link(tb.gatech, tb.ornl));
  EXPECT_TRUE(tb.net->has_link(tb.osu, tb.ornl));
  // No direct LSU-UT overlay link (CM talks to DS, not CS).
  EXPECT_FALSE(tb.net->has_link(tb.lsu, tb.ut));
}

TEST(Testbed, UtOrnlIsFastestPathIntoClient) {
  ns::Testbed tb = ns::make_testbed();
  const double ut_bw = tb.net->link(tb.ut, tb.ornl).config().bandwidth_Bps;
  for (const auto n : {tb.ncstate, tb.gatech, tb.osu, tb.lsu}) {
    EXPECT_GT(ut_bw, tb.net->link(n, tb.ornl).config().bandwidth_Bps);
  }
}

TEST(Testbed, EndToEndPacketAcrossOptimalLoopHop) {
  ns::Testbed tb = ns::make_testbed();
  int delivered = 0;
  tb.net->listen(tb.ut, 5, [&](const ns::Packet&) { ++delivered; });
  ns::Packet p;
  p.src = tb.gatech;
  p.dst = tb.ut;
  p.port = 5;
  p.wire_bytes = 1500;
  tb.net->send(p);
  tb.sim->run();
  EXPECT_EQ(delivered, 1);
}

TEST(Testbed, BandwidthScaleOption) {
  ns::TestbedOptions opt;
  opt.bandwidth_scale = 2.0;
  ns::Testbed fast = ns::make_testbed(opt);
  ns::Testbed nominal = ns::make_testbed();
  EXPECT_DOUBLE_EQ(
      fast.net->link(fast.ut, fast.ornl).config().bandwidth_Bps,
      2.0 * nominal.net->link(nominal.ut, nominal.ornl).config().bandwidth_Bps);
}
