// Tile-based dirty-rect frame deltas: publish-time tile encoding, the
// sequential prebuilt delta body, cursor-anchored reassembly for skipping
// clients (byte-identical composites after random skips), the full-frame
// fallbacks (full change, aged-out cursor, missing tier reference, tier
// switch), and the HTTP-level full=1 resync escape hatch.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/base64.hpp"
#include "util/json.hpp"
#include "util/prng.hpp"
#include "web/frontend.hpp"
#include "web/http.hpp"
#include "web/hub.hpp"
#include "web/session.hpp"
#include "viz/image.hpp"
#include "viz/tiles.hpp"

namespace w = ricsa::web;
namespace v = ricsa::viz;
namespace u = ricsa::util;
using ricsa::util::Json;

namespace {

Json state_of(double value) {
  Json s;
  s["value"] = value;
  return s;
}

/// A localized-change workload frame: dark background with an 8x8 bright
/// square whose position depends on `step` — the moving feature of a
/// monitored visualization, touching only a few tiles per frame.
v::Image scene(int step, int width = 64, int height = 48) {
  v::Image img(width, height, {10, 10, 30, 255});
  const int x0 = (step * 5) % (width - 8);
  const int y0 = (step * 3) % (height - 8);
  for (int y = y0; y < y0 + 8; ++y) {
    for (int x = x0; x < x0 + 8; ++x) {
      img.at(x, y) = {250, 200, 40, 255};
    }
  }
  return img;
}

v::Image decode_b64_png(const std::string& b64) {
  return v::Image::decode_png(u::base64_decode(b64));
}

/// Apply a parsed poll body to a client-side canvas, exactly the way the
/// dashboard JS does: tiles patch the canvas when base_seq matches what the
/// canvas shows, a full image replaces it. Returns false when the body
/// could not be composited (the JS would set full=1).
bool apply_body(const Json& body, v::Image& canvas, std::uint64_t& composited) {
  if (body.contains("tiles")) {
    if (static_cast<std::uint64_t>(body.at("base_seq").as_number()) !=
        composited) {
      return false;
    }
    for (const Json& t : body.at("tiles").as_array()) {
      const v::Image tile = decode_b64_png(t.at("png_b64").as_string());
      EXPECT_EQ(tile.width(), static_cast<int>(t.at("w").as_number()));
      EXPECT_EQ(tile.height(), static_cast<int>(t.at("h").as_number()));
      v::TileGrid::composite(canvas, tile,
                             static_cast<int>(t.at("x").as_number()),
                             static_cast<int>(t.at("y").as_number()));
    }
    composited = static_cast<std::uint64_t>(body.at("seq").as_number());
    return true;
  }
  if (body.contains("image_b64")) {
    canvas = decode_b64_png(body.at("image_b64").as_string());
    composited = static_cast<std::uint64_t>(body.at("seq").as_number());
    return true;
  }
  // Image unchanged: the canvas already shows this frame's pixels.
  composited = static_cast<std::uint64_t>(body.at("seq").as_number());
  return true;
}

w::FrameHub::Config tile_hub_config() {
  w::FrameHub::Config config;
  config.window = 64;
  config.workers = 1;
  config.max_wait_s = 5.0;
  config.tile_size = 16;
  return config;
}

}  // namespace

namespace {

/// scene() over a deterministic noise background (same noise every frame, so
/// only the moving square's tiles are dirty). The noise keeps the full-frame
/// PNG from compressing to almost nothing — with the real DEFLATE encoder a
/// flat background shrinks ~100x, which would make "delta smaller than full"
/// meaningless at this toy scale. Real monitored frames have content
/// everywhere; this models that.
v::Image textured_scene(int step, int width = 64, int height = 48) {
  v::Image img = scene(step, width, height);
  u::Xoshiro256 noise(4242);  // same seed every call: static texture
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      // Always draw from the stream so pixel (x, y) gets the same noise
      // regardless of where the feature sits in this frame.
      const auto r = static_cast<std::uint8_t>(noise() & 0xFF);
      const auto g = static_cast<std::uint8_t>(noise() & 0xFF);
      const auto b = static_cast<std::uint8_t>(noise() & 0xFF);
      v::Rgba& p = img.at(x, y);
      if (p.r == 250) continue;  // leave the moving feature alone
      p = {r, g, b, 255};
    }
  }
  return img;
}

}  // namespace

TEST(TileDelta, SequentialDeltaBodyCarriesOnlyDirtyTiles) {
  w::FrameHub hub(tile_hub_config());
  hub.publish(state_of(1.0), textured_scene(0));
  hub.publish(state_of(2.0), textured_scene(1));

  const w::FramePtr f1 = hub.next_after(0);
  const w::FramePtr f2 = hub.next_after(1);
  ASSERT_TRUE(f1 && f2);

  const Json delta = Json::parse(f2->body(w::Tier::kFull, true));
  ASSERT_TRUE(delta.contains("tiles"));
  EXPECT_FALSE(delta.contains("image_b64"));
  EXPECT_EQ(delta.at("base_seq").as_number(), 1.0);
  EXPECT_EQ(delta.at("img_w").as_number(), 64.0);
  // The 8x8 feature moved by (5,3): both positions fit in a handful of the
  // twelve 16x16 tiles — far from a full resend.
  const std::size_t tiles = delta.at("tiles").as_array().size();
  EXPECT_GE(tiles, 1u);
  EXPECT_LE(tiles, 6u);
  // And the delta body is materially smaller than the full one.
  EXPECT_LT(f2->body(w::Tier::kFull, true).size(),
            f2->body(w::Tier::kFull, false).size() / 2);

  // Compositing the tiles over frame 1 reproduces frame 2 byte-identically.
  v::Image canvas = decode_b64_png(
      Json::parse(f1->body(w::Tier::kFull, false)).at("image_b64").as_string());
  std::uint64_t composited = 1;
  ASSERT_TRUE(apply_body(delta, canvas, composited));
  EXPECT_EQ(composited, 2u);
  EXPECT_EQ(canvas.pixels(), textured_scene(1).pixels());
}

TEST(TileDelta, CursorAnchoredReassemblyIsByteIdenticalAfterRandomSkips) {
  w::FrameHub hub(tile_hub_config());
  const int kFrames = 40;
  for (int i = 0; i < kFrames; ++i) hub.publish(state_of(i), scene(i));

  // A skipping client: composite frame 1 in full, then jump the cursor by
  // random strides (1..4 frames), asking for a cursor-anchored delta each
  // time — the paced/latest_only consumption pattern.
  const w::FramePtr first = hub.next_after(0);
  ASSERT_TRUE(first);
  v::Image canvas = decode_b64_png(Json::parse(first->body(w::Tier::kFull, false))
                                       .at("image_b64")
                                       .as_string());
  std::uint64_t composited = 1;
  u::Xoshiro256 rng(99);
  int tile_polls = 0;
  while (composited < static_cast<std::uint64_t>(kFrames)) {
    const std::uint64_t target =
        std::min<std::uint64_t>(composited + 1 + rng() % 4, kFrames);
    const w::FramePtr frame = hub.next_after(target - 1);
    ASSERT_TRUE(frame);
    ASSERT_EQ(frame->seq, target);
    std::string body = hub.delta_body_for(frame, composited, w::Tier::kFull);
    if (body.empty()) {
      body = frame->body(w::Tier::kFull, false);
    } else {
      ++tile_polls;
    }
    ASSERT_TRUE(apply_body(Json::parse(body), canvas, composited));
    ASSERT_EQ(composited, target);
    // Byte-identical to the server's own framebuffer at every step — zero
    // drift, zero gaps, no matter how many frames were skipped. (Frame seq
    // s was published from scene(s - 1).)
    ASSERT_EQ(canvas.pixels(),
              scene(static_cast<int>(target) - 1).pixels())
        << "composite diverged at seq " << target;
  }
  // The localized workload must actually be served by tiles, not fallbacks.
  EXPECT_GT(tile_polls, 5);
}

TEST(TileDelta, FullChangeFallsBackToFullImage) {
  w::FrameHub hub(tile_hub_config());
  hub.publish(state_of(1.0), v::Image(64, 48, {0, 0, 0, 255}));
  hub.publish(state_of(2.0), v::Image(64, 48, {255, 255, 255, 255}));
  const w::FramePtr f2 = hub.next_after(1);
  ASSERT_TRUE(f2);
  // Every tile changed: the delta body carries the whole image, not tiles.
  const Json delta = Json::parse(f2->body(w::Tier::kFull, true));
  EXPECT_FALSE(delta.contains("tiles"));
  EXPECT_TRUE(delta.contains("image_b64"));
  // And the cursor-anchored path declines too.
  EXPECT_TRUE(hub.delta_body_for(f2, 1, w::Tier::kFull).empty());
}

TEST(TileDelta, CursorAnchoredDeltaRefusesRangesCrossingFullChangeFrames) {
  w::FrameHub hub(tile_hub_config());
  hub.publish(state_of(1.0), scene(0));
  hub.publish(state_of(2.0), v::Image(64, 48, {255, 255, 255, 255}));  // cut
  hub.publish(state_of(3.0), scene(2));  // full change again (vs white)
  hub.publish(state_of(4.0), scene(3));
  const w::FramePtr f4 = hub.next_after(3);
  ASSERT_TRUE(f4);
  // Cursor at 1, serving 4: the scene cut at 2/3 changed tiles that the
  // stored per-frame encodes cannot account for — full fallback, never a
  // franken-frame.
  EXPECT_TRUE(hub.delta_body_for(f4, 1, w::Tier::kFull).empty());
  // Anchored after the cut (cursor 3 -> 4) tiles work again.
  EXPECT_FALSE(hub.delta_body_for(f4, 3, w::Tier::kFull).empty());
}

TEST(TileDelta, UnchangedImageSharesRawBufferAndOmitsImage) {
  w::FrameHub hub(tile_hub_config());
  hub.publish(state_of(1.0), scene(0));
  hub.publish(state_of(2.0), scene(0));  // byte-identical pixels
  const w::FramePtr f1 = hub.next_after(0);
  const w::FramePtr f2 = hub.next_after(1);
  ASSERT_TRUE(f1 && f2);
  const Json delta = Json::parse(f2->body(w::Tier::kFull, true));
  EXPECT_FALSE(delta.contains("tiles"));
  EXPECT_FALSE(delta.contains("image_b64"));
  // A converged simulation retains one framebuffer, not window-many.
  EXPECT_EQ(f1->tiles[0].raw().get(), f2->tiles[0].raw().get());
  // Cursor-anchored across the unchanged frame still works: 1 -> 3.
  hub.publish(state_of(3.0), scene(5));
  const w::FramePtr f3 = hub.next_after(2);
  ASSERT_TRUE(f3);
  const std::string body = hub.delta_body_for(f3, 1, w::Tier::kFull);
  ASSERT_FALSE(body.empty());
  v::Image canvas = scene(0);
  std::uint64_t composited = 1;
  ASSERT_TRUE(apply_body(Json::parse(body), canvas, composited));
  EXPECT_EQ(canvas.pixels(), scene(5).pixels());
}

TEST(TileDelta, CursorAgedOutOfWindowFallsBack) {
  w::FrameHub::Config config = tile_hub_config();
  config.window = 4;
  w::FrameHub hub(config);
  for (int i = 0; i < 10; ++i) hub.publish(state_of(i), scene(i));
  const w::FramePtr latest = hub.next_after(9);
  ASSERT_TRUE(latest);
  ASSERT_EQ(hub.oldest_retained(), 7u);
  // Cursor 2 left the window long ago: no reference framebuffer, no delta.
  EXPECT_TRUE(hub.delta_body_for(latest, 2, w::Tier::kFull).empty());
  // A retained cursor still deltas.
  EXPECT_FALSE(hub.delta_body_for(latest, 8, w::Tier::kFull).empty());
}

TEST(TileDelta, HalfTierDeltaNeedsAHalfReferenceFrame) {
  w::FrameHub hub(tile_hub_config());
  hub.publish(state_of(1.0), scene(0), /*build_half=*/false);
  hub.publish(state_of(2.0), scene(1), /*build_half=*/true);
  hub.publish(state_of(3.0), scene(2), /*build_half=*/true);
  const w::FramePtr f2 = hub.next_after(1);
  const w::FramePtr f3 = hub.next_after(2);
  ASSERT_TRUE(f2 && f3);
  // Frame 1 never built the half image: a half-tier delta anchored at it
  // has no same-tier reference and must decline...
  EXPECT_TRUE(hub.delta_body_for(f2, 1, w::Tier::kHalf).empty());
  // ...while 2 -> 3 (both half-rendered) deltas fine, and reassembles to
  // exactly the server's half-resolution framebuffer.
  const std::string body = hub.delta_body_for(f3, 2, w::Tier::kHalf);
  ASSERT_FALSE(body.empty());
  v::Image canvas = v::downsample(scene(1), 2);
  std::uint64_t composited = 2;
  ASSERT_TRUE(apply_body(Json::parse(body), canvas, composited));
  EXPECT_EQ(canvas.pixels(), v::downsample(scene(2), 2).pixels());
  // The full tier, meanwhile, is never poisoned by the half tier's gaps.
  EXPECT_FALSE(hub.delta_body_for(f3, 2, w::Tier::kFull).empty());
}

TEST(TileDelta, TierSwitchForcesFullFrame) {
  // The session-level delta gate (satellite of the tier pipeline): a client
  // downgraded between polls must not get a body diffed against another
  // tier's reference.
  w::PacingConfig config;
  config.frame_interval_s = 0.1;
  config.downgrade_streak = 2;
  w::ClientSession session(config, "c1", "peer", 0.0);
  double now = 0.0;
  // Fresh session on the full tier: delta allowed once a delivery landed.
  EXPECT_TRUE(session.decide(now, 0.1).allow_delta);
  session.on_delivered(now += 0.1, 1000, 0, w::Tier::kFull, 0.1);
  EXPECT_TRUE(session.decide(now, 0.1).allow_delta);
  // Starve the meter so utilization collapses and the tier downgrades.
  for (int i = 0; i < 20 && session.tier() == w::Tier::kFull; ++i) {
    session.on_delivered(now += 5.0, 1000, 0, w::Tier::kFull, 0.1);
  }
  ASSERT_NE(session.tier(), w::Tier::kFull);
  // Next poll is the first at the new tier: the previous delivery used the
  // old tier, so the delta contract is void — full frame.
  EXPECT_FALSE(session.decide(now, 0.1).allow_delta);
  // After a delivery at the new tier the contract holds again.
  session.on_delivered(now += 0.1, 1000, 0, session.tier(), 0.1);
  EXPECT_TRUE(session.decide(now, 0.1).allow_delta);
}

// ------------------------------------------------- HTTP level (frontend) ----

namespace {

w::FrontEndConfig delta_frontend() {
  w::FrontEndConfig config;
  config.session.simulation = ricsa::hydro::HydroSimulation::Kind::kSod;
  config.session.resolution = 24;
  config.session.viz.image_width = 48;
  config.session.viz.image_height = 48;
  config.session.viz.isovalue = 0.5f;
  config.frame_interval_s = 0.02;
  config.tile_size = 16;
  return config;
}

}  // namespace

TEST(TileDeltaHttp, FullParamForcesCompleteFrameAndStaleCursorResyncs) {
  w::AjaxFrontEnd fe(delta_frontend());
  const int port = fe.start();
  // First frame, full body.
  const auto first = Json::parse(
      w::http_get(port, "/api/poll?since=0&timeout=10").body);
  const auto seq = static_cast<std::uint64_t>(first.at("seq").as_number());
  ASSERT_GE(seq, 1u);
  ASSERT_TRUE(first.contains("image_b64"));

  // full=1 overrides delta=1: the resync escape hatch always yields a
  // complete frame, never tiles.
  const auto resync = Json::parse(
      w::http_get(port, "/api/poll?since=" + std::to_string(seq) +
                            "&delta=1&full=1&timeout=10")
          .body);
  EXPECT_TRUE(resync.contains("image_b64"));
  EXPECT_FALSE(resync.contains("tiles"));
  EXPECT_FALSE(resync.contains("base_seq"));

  // A stale-epoch cursor (way past the head) is clamped and served the
  // next published frame — a full body (cursor-anchored deltas cannot
  // apply), not an indefinitely parked poll and not a timeout.
  const auto t0 = std::chrono::steady_clock::now();
  const auto stale = Json::parse(
      w::http_get(port, "/api/poll?since=99999&delta=1&timeout=10").body);
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count(),
            5.0);
  EXPECT_FALSE(stale.contains("timeout"));
  EXPECT_FALSE(stale.contains("tiles"));
  ASSERT_GE(stale.at("seq").as_number(), 1.0);
  EXPECT_LT(stale.at("seq").as_number(), 99999.0);
  fe.stop();
}

TEST(TileDeltaHttp, PollDeltaBodiesCompositeToTheServerImage) {
  w::AjaxFrontEnd fe(delta_frontend());
  const int port = fe.start();
  w::HttpClient http(port);

  // Drive the view so frames actually change (orbiting azimuth), then
  // long-poll with delta=1 like the dashboard and keep a composited canvas.
  v::Image canvas;
  std::uint64_t composited = 0;
  std::uint64_t since = 0;
  int applied = 0;
  int tile_bodies = 0;
  for (int i = 0; i < 30 && applied < 12; ++i) {
    http.post("/api/view", "{\"azimuth\": " + std::to_string(0.7 + 0.1 * i) +
                               "}");
    const auto r =
        http.get("/api/poll?since=" + std::to_string(since) +
                     "&delta=1&timeout=5",
                 10.0);
    ASSERT_EQ(r.status, 200);
    const Json body = Json::parse(r.body);
    if (body.contains("timeout")) continue;
    since = static_cast<std::uint64_t>(body.at("seq").as_number());
    if (body.contains("tiles")) ++tile_bodies;
    ASSERT_TRUE(apply_body(body, canvas, composited));
    ++applied;
    // The canvas must match the server's current full framebuffer exactly
    // whenever we are at the head (fetch the full body of the same seq via
    // a second client staying one behind is racy; instead assert against
    // /api/image only when seq still matches).
    const auto img = w::http_get(port, "/api/image");
    if (img.status == 200 && fe.frame_seq() == since) {
      const v::Image server = v::Image::decode_png(std::vector<std::uint8_t>(
          img.body.begin(), img.body.end()));
      if (fe.frame_seq() == since) {
        EXPECT_EQ(canvas.pixels(), server.pixels())
            << "composite diverged at seq " << since;
      }
    }
  }
  EXPECT_GE(applied, 12);
  fe.stop();
}
