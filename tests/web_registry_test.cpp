// Multi-hub sharding tests: HubRegistry lifecycle (lazy creation, revival,
// idle reaping), cross-shard isolation under concurrency, bounded raw
// framebuffer retention, the registry-level shared pacing session, and the
// `view=` HTTP contract end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "viz/image.hpp"
#include "web/frontend.hpp"
#include "web/http.hpp"
#include "web/registry.hpp"

namespace w = ricsa::web;
namespace v = ricsa::viz;
using ricsa::util::Json;

namespace {

Json state_of(const std::string& view, double value) {
  Json s;
  s["view"] = view;
  s["value"] = value;
  return s;
}

/// A tiny image whose content moves with `step` (keeps tile deltas real).
v::Image scene(int step, int width = 48, int height = 32) {
  v::Image img(width, height, {10, 10, 30, 255});
  const int x0 = (step * 5) % (width - 8);
  const int y0 = (step * 3) % (height - 8);
  for (int y = y0; y < y0 + 8; ++y) {
    for (int x = x0; x < x0 + 8; ++x) {
      img.at(x, y) = {250, 200, 40, 255};
    }
  }
  return img;
}

w::HubRegistry::Config small_registry() {
  w::HubRegistry::Config config;
  config.hub.window = 64;
  config.hub.workers = 2;
  config.hub.max_wait_s = 5.0;
  config.hub.tile_size = 16;
  config.idle_reap_s = 0.0;  // tests opt in explicitly
  return config;
}

}  // namespace

// ------------------------------------------------------- HubRegistry ----

TEST(HubRegistry, PublishDeclaresViewsAndUnknownSubscribesAre404Material) {
  w::HubRegistry registry(small_registry());
  EXPECT_EQ(registry.subscribe("rho/iso"), nullptr);  // never declared

  EXPECT_EQ(registry.publish("rho/iso", state_of("rho/iso", 1.0), scene(0)),
            1u);
  EXPECT_EQ(registry.publish("rho/iso", state_of("rho/iso", 2.0), scene(1)),
            2u);
  EXPECT_EQ(registry.publish("pressure/slice",
                             state_of("pressure/slice", 1.0), scene(0)),
            1u);  // its own seq space

  const auto rho = registry.subscribe("rho/iso");
  ASSERT_NE(rho, nullptr);
  EXPECT_EQ(rho->seq(), 2u);
  EXPECT_EQ(registry.subscribe("nope"), nullptr);

  const auto names = registry.view_names();
  EXPECT_EQ(names.size(), 2u);
  EXPECT_TRUE(registry.known("pressure/slice"));
  EXPECT_FALSE(registry.known("nope"));

  const auto stats = registry.stats();
  EXPECT_EQ(stats.live, 2u);
  EXPECT_EQ(stats.known, 2u);
  EXPECT_EQ(stats.created, 2u);
  EXPECT_EQ(stats.reaped, 0u);
}

TEST(HubRegistry, MaxViewsBoundsThePublisherNamespace) {
  w::HubRegistry::Config config = small_registry();
  config.max_views = 2;
  w::HubRegistry registry(config);
  EXPECT_GT(registry.publish("a", state_of("a", 1.0), scene(0)), 0u);
  EXPECT_GT(registry.publish("b", state_of("b", 1.0), scene(0)), 0u);
  // A third name is refused; existing views keep publishing.
  EXPECT_EQ(registry.publish("c", state_of("c", 1.0), scene(0)), 0u);
  EXPECT_FALSE(registry.known("c"));
  EXPECT_GT(registry.publish("a", state_of("a", 2.0), scene(1)), 0u);
}

TEST(HubRegistry, ConcurrentPerViewStreamsAreGapFreeAndIsolated) {
  // N publishers, each into its own view, with per-view pollers: every
  // poller must see ITS view's frames as a strictly-increasing, gap-free
  // sequence carrying only that view's payloads — publishes into other
  // shards must never leak in or reorder anything.
  constexpr int kViews = 4;
  constexpr int kFrames = 40;
  constexpr int kPollersPerView = 3;
  w::HubRegistry registry(small_registry());
  std::vector<std::string> views;
  for (int i = 0; i < kViews; ++i) {
    views.push_back("var" + std::to_string(i) + "/iso");
    // Declare before the pollers subscribe.
    registry.publish(views.back(), state_of(views.back(), 0.0), scene(0));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> pollers;
  for (int vi = 0; vi < kViews; ++vi) {
    for (int p = 0; p < kPollersPerView; ++p) {
      pollers.emplace_back([&, vi] {
        const auto hub = registry.subscribe(views[static_cast<std::size_t>(vi)]);
        if (!hub) {
          ++failures;
          return;
        }
        std::uint64_t since = 0;
        while (since < kFrames + 1) {
          const w::FramePtr frame = hub->wait(since, 5.0);
          if (!frame) {
            ++failures;  // timeout mid-stream
            return;
          }
          if (frame->seq != since + 1) ++failures;  // gap
          if (frame->state.at("view").as_string() !=
              views[static_cast<std::size_t>(vi)]) {
            ++failures;  // cross-shard leak
          }
          since = frame->seq;
        }
      });
    }
  }

  std::vector<std::thread> publishers;
  for (int vi = 0; vi < kViews; ++vi) {
    publishers.emplace_back([&, vi] {
      const std::string& view = views[static_cast<std::size_t>(vi)];
      for (int k = 1; k <= kFrames; ++k) {
        registry.publish(view, state_of(view, k), scene(k));
      }
    });
  }
  for (auto& t : publishers) t.join();
  for (auto& t : pollers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(HubRegistry, SlowConsumerOnOneViewNeverDelaysAnotherShard) {
  w::HubRegistry::Config config = small_registry();
  config.hub.window = 8;  // a small window the slow view quickly overruns
  w::HubRegistry registry(config);
  registry.publish("slow/view", state_of("slow/view", 0.0), scene(0));
  registry.publish("fast/view", state_of("fast/view", 0.0), scene(0));

  // The slow consumer reads one frame and then parks forever (cursor far
  // behind while its shard's window wraps many times over).
  const auto slow_hub = registry.subscribe("slow/view");
  ASSERT_NE(slow_hub, nullptr);
  ASSERT_NE(slow_hub->wait(0, 1.0), nullptr);

  // A fast consumer on the other shard, while both shards keep publishing.
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    int k = 1;
    while (!stop.load()) {
      registry.publish("slow/view", state_of("slow/view", k), scene(k));
      registry.publish("fast/view", state_of("fast/view", k), scene(k));
      ++k;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  const auto fast_hub = registry.subscribe("fast/view");
  ASSERT_NE(fast_hub, nullptr);
  std::uint64_t since = fast_hub->seq();
  int received = 0;
  while (received < 64) {
    // The generous timeout is the isolation assertion: the fast shard must
    // keep delivering at the publish cadence while the slow shard's window
    // is overrun continuously behind the parked cursor. (Strict per-frame
    // gap-freeness under load is covered by the bounded-stream concurrent
    // test above; this one runs unthrottled and cannot assume scheduling.)
    const w::FramePtr frame = fast_hub->wait(since, 5.0);
    ASSERT_NE(frame, nullptr) << "fast view starved behind the slow one";
    ASSERT_GT(frame->seq, since);
    since = frame->seq;
    ++received;
  }
  stop.store(true);
  publisher.join();
  // The slow shard kept its own bounded window; the parked cursor did not
  // pin memory or stall its publisher either.
  EXPECT_GE(slow_hub->oldest_retained(), 2u);
  EXPECT_EQ(fast_hub->stats().timeouts, 0u);
}

TEST(HubRegistry, ReapingIdleViewCompletesParkedPollersAndRevivesOnPoll) {
  w::HubRegistry::Config config = small_registry();
  config.idle_reap_s = 0.05;
  w::HubRegistry registry(config);
  registry.publish("transient", state_of("transient", 1.0), scene(0));

  const auto hub = registry.subscribe("transient");
  ASSERT_NE(hub, nullptr);
  // Park a poller at the head: nothing new will be published.
  std::atomic<bool> completed{false};
  std::atomic<bool> got_frame{false};
  hub->wait_async(hub->seq(), 30.0, [&](w::FramePtr frame) {
    got_frame.store(frame != nullptr);
    completed.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(registry.reap_idle_now(), 1u);
  // The parked poller was NOT stranded: it completed with the timeout
  // contract (null frame), which a live client answers with a re-poll.
  for (int i = 0; i < 100 && !completed.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(completed.load());
  EXPECT_FALSE(got_frame.load());
  EXPECT_EQ(registry.stats().reaped, 1u);
  EXPECT_EQ(registry.stats().live, 0u);
  EXPECT_TRUE(registry.known("transient"));

  // The re-poll revives an empty shard; a stale cursor from the previous
  // hub epoch parks against the clamped head and resyncs with the next
  // publish — the stale-cursor path, not a 404 and not a forever-park.
  const auto revived = registry.subscribe("transient");
  ASSERT_NE(revived, nullptr);
  EXPECT_NE(revived.get(), hub.get());
  EXPECT_EQ(revived->seq(), 0u);
  std::atomic<std::uint64_t> resync_seq{0};
  revived->wait_async(/*stale cursor*/ 7, 5.0, [&](w::FramePtr frame) {
    if (frame) resync_seq.store(frame->seq);
  });
  registry.publish("transient", state_of("transient", 2.0), scene(1));
  for (int i = 0; i < 100 && resync_seq.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(resync_seq.load(), 1u);
  EXPECT_EQ(registry.stats().created, 2u);

  // Pinned shards are reap-exempt.
  const auto pinned = registry.pin("pinned");
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(registry.reap_idle_now(), 1u);  // "transient" again, not "pinned"
  EXPECT_EQ(registry.find("pinned"), pinned);
}

// ------------------------------------------- bounded raw retention ----

TEST(FrameHub, RawWindowDropsFramebuffersButKeepsSequentialTileDeltas) {
  w::FrameHub::Config config;
  config.window = 16;
  config.workers = 1;
  config.max_wait_s = 5.0;
  config.tile_size = 16;
  config.raw_window = 3;
  w::FrameHub hub(config);
  for (int k = 0; k < 8; ++k) hub.publish(state_of("v", k), scene(k));

  // Frames past the raw window lost their framebuffers; recent ones keep
  // them (seq > 8 - 3 = 5).
  for (std::uint64_t s = 1; s <= 8; ++s) {
    const w::FramePtr frame = hub.next_after(s - 1);
    ASSERT_NE(frame, nullptr);
    ASSERT_EQ(frame->seq, s);
    if (s > 5) {
      EXPECT_NE(frame->tiles[0].raw(), nullptr) << "seq " << s;
    } else {
      EXPECT_EQ(frame->tiles[0].raw(), nullptr) << "seq " << s;
    }
    // The prebuilt sequential delta body still carries tiles: raw pixels
    // are only the diff *reference*, not the payload.
    if (s > 1) {
      const Json delta = Json::parse(frame->body(w::Tier::kFull, true));
      EXPECT_TRUE(delta.contains("tiles")) << "seq " << s;
    }
  }

  const w::FramePtr head = hub.latest();
  ASSERT_NE(head, nullptr);
  // Cursor inside the raw window: a cursor-anchored tile delta assembles.
  EXPECT_FALSE(hub.delta_body_for(head, 6, w::Tier::kFull).empty());
  // Cursor behind the raw window: the reference framebuffer is gone, so
  // the hub declines and the caller serves the full body.
  EXPECT_TRUE(hub.delta_body_for(head, 3, w::Tier::kFull).empty());
}

// ------------------------------------- shared session across views ----

namespace {

w::PacingConfig test_pacing() {
  w::PacingConfig p;
  p.frame_interval_s = 0.05;
  p.meter_window_s = 2.0;
  p.low_util = 0.6;
  p.high_util = 0.85;
  p.downgrade_streak = 2;
  p.upgrade_streak = 3;
  return p;
}

}  // namespace

TEST(ClientSession, DrainingOnlyOneOfTwoViewsCountsAsHalfUtilization) {
  // The double-counting regression: one browser polls two views but only
  // drains one stream's frames. With a per-stream denominator the single
  // drained stream would look 100% utilized and the client would stay on
  // the full tier forever; the shared session normalizes by active views
  // and downgrades.
  w::ClientSession s(test_pacing(), "two-views", "", 0.0);
  double t = 0.0;
  for (int i = 0; i < 60 && s.tier() == w::Tier::kFull; ++i) {
    t += 0.05;
    s.decide(t, 0.05, "rho/iso");
    s.decide(t, 0.05, "pressure/slice");         // polled but never drained
    s.on_delivered(t, 20000, 0, s.tier(), 0.05, "rho/iso");
  }
  EXPECT_NE(s.tier(), w::Tier::kFull);
  EXPECT_EQ(s.active_views(t), 2u);

  // Control: the same delivery pattern on ONE view is full utilization —
  // no downgrade.
  w::ClientSession single(test_pacing(), "one-view", "", 0.0);
  t = 0.0;
  for (int i = 0; i < 60; ++i) {
    t += 0.05;
    single.decide(t, 0.05, "rho/iso");
    single.on_delivered(t, 20000, 0, single.tier(), 0.05, "rho/iso");
  }
  EXPECT_EQ(single.tier(), w::Tier::kFull);
  EXPECT_EQ(single.active_views(t), 1u);
}

TEST(ClientSession, DeltaContractIsPerView) {
  // A tier fallback served on one view must not break the other view's
  // delta chain: last_served_tier is per stream. Streak thresholds are
  // pushed out of reach so the control law cannot move the session tier
  // mid-test (the sparse delivery pattern here would look "slow").
  w::PacingConfig config = test_pacing();
  config.downgrade_streak = 1000;
  config.upgrade_streak = 1000;
  w::ClientSession s(config, "delta-views", "", 0.0);
  s.on_delivered(0.1, 20000, 0, w::Tier::kFull, 0.05, "a");
  s.on_delivered(0.1, 6000, 0, w::Tier::kHalf, 0.05, "b");  // e.g. fallback
  EXPECT_TRUE(s.decide(0.2, 0.05, "a").allow_delta);
  EXPECT_FALSE(s.decide(0.2, 0.05, "b").allow_delta);
  // Serving "b" at the session tier restores its contract.
  s.on_delivered(0.3, 20000, 0, w::Tier::kFull, 0.05, "b");
  EXPECT_TRUE(s.decide(0.4, 0.05, "b").allow_delta);
}

TEST(SessionTable, ExpiryDropsRegistryLevelStateExactlyOnce) {
  w::PacingConfig config = test_pacing();
  config.idle_expiry_s = 0.5;
  w::SessionTable table(config);
  const auto session = table.acquire("expiring", "127.0.0.1:1", 0.0);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(table.size(), 1u);

  // Concurrent sweeps (every acquire sweeps) while the session expires:
  // the table entry must be dropped exactly once, and the shared_ptr held
  // by an in-flight delivery must keep the object alive — recording into
  // it after eviction is safe, never a use-after-free.
  std::vector<std::thread> threads;
  std::atomic<int> round{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        // The hammer clock spans [2.0, 2.2]: far enough past the target's
        // 0.0 touch to expire it, tight enough that no hammer session can
        // itself idle past the 0.5 s expiry between its own touches.
        const double now = 2.0 + 0.001 * round.fetch_add(1);
        table.acquire("hammer-" + std::to_string(t), "", now);
        session->on_delivered(now, 100, 0, w::Tier::kFull, 0.05, "a");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(table.expired(), 1u);  // "expiring" died once; hammers stayed
  // A later acquire under the same id is a fresh session, not the corpse.
  const auto reborn = table.acquire("expiring", "", 10.0);
  ASSERT_NE(reborn, nullptr);
  EXPECT_NE(reborn.get(), session.get());
}

// ------------------------------------------------- HTTP view= contract ----

namespace {

w::FrontEndConfig sharded_frontend() {
  w::FrontEndConfig config;
  config.session.resolution = 16;
  config.session.cycles_per_frame = 1;
  config.session.viz.image_width = 32;
  config.session.viz.image_height = 32;
  config.frame_interval_s = 0.03;
  config.tile_size = 16;
  w::ViewSpec spec;
  spec.name = "rho/iso";
  spec.viz = config.session.viz;
  spec.camera.azimuth = 2.0f;
  config.views.push_back(spec);
  return config;
}

}  // namespace

TEST(AjaxFrontEnd, ViewParameterRoutesToShardsAndUnknownViewsAre404) {
  w::AjaxFrontEnd frontend(sharded_frontend());
  const int port = frontend.start();
  while (frontend.frame_seq() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Missing view= keeps the single-hub contract (default view).
  const auto main_poll = w::http_get(port, "/api/poll?since=0&timeout=5");
  ASSERT_EQ(main_poll.status, 200);
  EXPECT_EQ(Json::parse(main_poll.body).at("state").at("view").as_string(),
            "main");

  // view= routes to the named shard, whose stream carries its own payload
  // and its own seq space.
  const auto rho_poll =
      w::http_get(port, "/api/poll?since=0&timeout=5&view=rho%2Fiso");
  ASSERT_EQ(rho_poll.status, 200);
  const Json rho = Json::parse(rho_poll.body);
  EXPECT_EQ(rho.at("state").at("view").as_string(), "rho/iso");
  EXPECT_GE(rho.at("seq").as_number(), 1.0);

  // Unknown views are 404 on every sharded route.
  EXPECT_EQ(w::http_get(port, "/api/poll?since=0&view=nope").status, 404);
  EXPECT_EQ(w::http_get(port, "/api/image?view=nope").status, 404);
  EXPECT_EQ(w::http_get(port, "/api/stats?view=nope").status, 404);
  EXPECT_EQ(w::http_get(port, "/api/state?view=nope").status, 404);

  // Sharded routes serve per-view data.
  const auto image = w::http_get(port, "/api/image?view=rho%2Fiso");
  EXPECT_EQ(image.status, 200);
  const auto stats_body = w::http_get(port, "/api/stats").body;
  const Json stats = Json::parse(stats_body);
  EXPECT_TRUE(stats.at("views").contains("main"));
  EXPECT_TRUE(stats.at("views").contains("rho/iso"));
  EXPECT_GE(stats.at("registry").at("live").as_number(), 2.0);
  const auto rho_stats =
      Json::parse(w::http_get(port, "/api/stats?view=rho%2Fiso").body);
  EXPECT_EQ(rho_stats.at("view").as_string(), "rho/iso");
  EXPECT_TRUE(rho_stats.at("live").as_bool());
  EXPECT_GE(rho_stats.at("published").as_number(), 1.0);
  // Stats are an observer, not a subscriber: scraping must not count as
  // shard activity (HubRegistry::find, never subscribe) — the reap test
  // above covers the lifecycle itself.
  EXPECT_EQ(frontend.registry().stats().created, 2u);

  frontend.stop();
}

TEST(AjaxFrontEnd, OneClientPollingTwoViewsSharesOneSession) {
  w::AjaxFrontEnd frontend(sharded_frontend());
  const int port = frontend.start();
  while (frontend.frame_seq() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // The same client identity polls both shards: the registry-level table
  // must hold ONE session whose meter both streams feed.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(w::http_get(port,
                          "/api/poll?since=0&timeout=5&client=shared-client")
                  .status,
              200);
    ASSERT_EQ(
        w::http_get(
            port,
            "/api/poll?since=0&timeout=5&client=shared-client&view=rho%2Fiso")
            .status,
        200);
  }
  EXPECT_EQ(frontend.sessions().size(), 1u);
  const Json pacing =
      Json::parse(w::http_get(port, "/api/stats").body).at("pacing");
  ASSERT_EQ(pacing.at("sessions").as_number(), 1.0);
  const Json client = pacing.at("clients").as_array().at(0);
  EXPECT_EQ(client.at("client").as_string(), "shared-client");
  EXPECT_EQ(client.at("active_views").as_number(), 2.0);

  frontend.stop();
}

TEST(HubRegistry, IdlePublishDivisorDecimatesUnwatchedViews) {
  w::HubRegistry::Config config = small_registry();
  config.idle_publish_divisor = 3;
  config.idle_publish_after_s = 0.2;
  w::HubRegistry registry(config);

  // First publish into a fresh shard is always real: the view needs a head
  // frame regardless of watchers.
  EXPECT_EQ(registry.publish("v", state_of("v", 0.0), scene(0)), 1u);

  // A watched view publishes at full rate.
  ASSERT_NE(registry.subscribe("v"), nullptr);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_EQ(registry.publish("v", state_of("v", i), scene(i)),
              static_cast<std::uint64_t>(1 + i));
  }

  // Let the subscriber activity age past the idle horizon: publishes now
  // decimate to every 3rd, each skip reporting the unchanged head seq.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  std::vector<std::uint64_t> seqs;
  for (int i = 0; i < 6; ++i) {
    seqs.push_back(registry.publish("v", state_of("v", 10 + i), scene(i)));
  }
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{6, 6, 7, 7, 7, 8}));
  const auto hub = registry.find("v");
  ASSERT_NE(hub, nullptr);
  EXPECT_EQ(hub->seq(), 8u);
}

TEST(HubRegistry, FirstSubscribeRestoresFullPublishRate) {
  w::HubRegistry::Config config = small_registry();
  config.idle_publish_divisor = 4;
  config.idle_publish_after_s = 0.05;
  w::HubRegistry registry(config);

  ASSERT_EQ(registry.publish("v", state_of("v", 0.0), scene(0)), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // Idle: this round is decimated (mid-cycle, one skip recorded).
  EXPECT_EQ(registry.publish("v", state_of("v", 1.0), scene(1)), 1u);

  // A client shows up: the very next publish must be real — the skip
  // counter and the idle clock both reset, whatever phase the decimation
  // cycle was in.
  ASSERT_NE(registry.subscribe("v"), nullptr);
  EXPECT_EQ(registry.publish("v", state_of("v", 2.0), scene(2)), 2u);
  EXPECT_EQ(registry.publish("v", state_of("v", 3.0), scene(3)), 3u);

  // touch() (the stream-delivery activity signal) keeps it at full rate.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  registry.touch("v");
  EXPECT_EQ(registry.publish("v", state_of("v", 4.0), scene(4)), 4u);
}

TEST(HubRegistry, DefaultDivisorPublishesEveryFrame) {
  // divisor = 1 (the default) must be behaviorally invisible: every
  // publish into a never-watched view is real.
  w::HubRegistry registry(small_registry());
  for (int i = 1; i <= 5; ++i) {
    EXPECT_EQ(registry.publish("v", state_of("v", i), scene(i)),
              static_cast<std::uint64_t>(i));
  }
}
