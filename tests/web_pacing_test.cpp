// Per-client adaptive pacing and long-poll robustness tests:
//  * ClientSession tier assignment, downgrade, upgrade-probe recovery, and
//    SessionTable idle expiry (the tier pipeline's control law, no sockets)
//  * /api/poll parameter sanitization — NaN / negative / malformed timeout
//    values must produce 400 or a clean 200-timeout, never reach the hub's
//    deadline arithmetic
//  * EINTR during a response write: the body keeps flowing instead of the
//    connection being treated as dead
//  * the idle read timeout is derived from the poll configuration, so a
//    legal long-poll config no longer kills keep-alive connections mid-poll
//  * end-to-end: a slow polling client is transparently downgraded while a
//    fast one keeps the full tier, and /api/stats reports the pacing state.
#include <gtest/gtest.h>
#include <pthread.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "time_scale.hpp"
#include "util/json.hpp"
#include "web/frontend.hpp"
#include "web/http.hpp"
#include "web/hub.hpp"
#include "web/session.hpp"

namespace w = ricsa::web;
using ricsa::util::Json;

namespace {

w::PacingConfig pacing_config() {
  w::PacingConfig p;
  p.frame_interval_s = 0.05;
  p.meter_window_s = 1.0;
  p.downgrade_streak = 2;
  p.upgrade_streak = 3;
  return p;
}

// Per-tier full-body sizes: full image, half image, state-only.
constexpr std::array<std::size_t, w::kTierCount> kSizes = {20000, 6000, 900};

w::FrontEndConfig small_frontend() {
  w::FrontEndConfig config;
  config.session.resolution = 16;
  config.session.cycles_per_frame = 1;
  config.session.viz.image_width = 32;
  config.session.viz.image_height = 32;
  config.frame_interval_s = 0.02;
  config.pacing.downgrade_streak = 2;
  config.pacing.upgrade_streak = 3;
  config.pacing.meter_window_s = 0.5;
  return config;
}

}  // namespace

// ----------------------------------------------------- ClientSession ----

TEST(ClientSession, FastClientStaysOnFullTier) {
  w::ClientSession s(pacing_config(), "fast", "127.0.0.1:1", 0.0);
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    t += 0.05;  // polls at publisher cadence, drains everything offered
    s.on_delivered(t, kSizes[0], 0, s.tier(), 0.05);
  }
  EXPECT_EQ(s.tier(), w::Tier::kFull);
  const auto d = s.decide(t, 0.05);
  EXPECT_EQ(d.tier, w::Tier::kFull);
  EXPECT_EQ(d.not_before_s, 0.0);       // unpaced
  EXPECT_FALSE(d.skip_to_latest);       // gap-free window replay preserved
}

TEST(ClientSession, SlowClientDowngradesToCheapestTierAndIsPaced) {
  w::ClientSession s(pacing_config(), "slow", "", 0.0);
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    t += 0.2;  // drains one frame per 0.2 s: a quarter of the offered rate
    s.on_delivered(t, kSizes[static_cast<std::size_t>(s.tier())], 0,
                   s.tier(), 0.05);
  }
  EXPECT_EQ(s.tier(), w::Tier::kStateOnly);
  // With even the cheapest tier under-drained, the Robbins-Monro interval
  // throttles the frame rate toward the client's demonstrated pace.
  EXPECT_GT(s.interval_s(), 0.05 * 1.25);
  const auto d = s.decide(t, 0.05);
  EXPECT_TRUE(d.skip_to_latest);
  EXPECT_GT(d.not_before_s, t);  // pacing window extends past "now"
  const Json stats = s.stats_json(t);
  EXPECT_EQ(stats.at("tier").as_string(), "state");
  EXPECT_GE(stats.at("downgrades").as_number(), 2.0);
}

TEST(ClientSession, TierTransitionSuspendsDeltaUntilAFullBodyIsServed) {
  w::PacingConfig config = pacing_config();
  w::ClientSession s(config, "delta", "", 0.0);
  EXPECT_TRUE(s.decide(0.0, 0.05).allow_delta);  // steady tier: deltas fine
  double t = 0.0;
  while (s.tier() == w::Tier::kFull) {
    t += 0.2;
    s.on_delivered(t, kSizes[0], 0, w::Tier::kFull, 0.05);
  }
  // The previous delivery was full-tier but the next serve is half-tier: a
  // delta would omit the (unchanged) image and leave the client showing the
  // wrong resolution.
  EXPECT_FALSE(s.decide(t, 0.05).allow_delta);
  s.on_delivered(t + 0.2, kSizes[1], 0, s.tier(), 0.05);
  EXPECT_TRUE(s.decide(t + 0.2, 0.05).allow_delta);  // full body delivered; deltas resume
}

TEST(ClientSession, RecoveredClientUpgradesBackToFull) {
  w::ClientSession s(pacing_config(), "recovering", "", 0.0);
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    t += 0.2;
    s.on_delivered(t, kSizes[static_cast<std::size_t>(s.tier())], 0,
                   s.tier(), 0.05);
  }
  ASSERT_EQ(s.tier(), w::Tier::kStateOnly);

  // The client recovers: it now drains every frame the pacing offers, as
  // fast as it is offered. Probes first restore the frame rate, then climb
  // the quality tiers.
  for (int i = 0; i < 500 && s.tier() != w::Tier::kFull; ++i) {
    t += std::max(0.05, s.interval_s());
    s.on_delivered(t, kSizes[static_cast<std::size_t>(s.tier())], 0,
                   s.tier(), 0.05);
  }
  EXPECT_EQ(s.tier(), w::Tier::kFull);
  EXPECT_LE(s.interval_s(), 0.05 * 1.25);
  EXPECT_GE(s.stats_json(t).at("upgrades").as_number(), 2.0);
}

TEST(ClientSession, FailedUpgradeProbesBackOffExponentially) {
  // A client parked exactly at its capacity boundary: every upward probe
  // gets knocked straight back down. Without backoff it re-probes (and the
  // user-visible quality flaps) every upgrade_streak samples forever; with
  // backoff the probe interval doubles per failure and resets on success.
  w::PacingConfig config = pacing_config();  // upgrade 3, downgrade 2
  config.max_probe_backoff = 8;
  w::ClientSession s(config, "boundary", "", 0.0);
  double t = 0.0;

  // Two under-drained samples knock the tier down one notch.
  const auto knock_down = [&] {
    for (int i = 0; i < 2; ++i) {
      t += 0.2;
      s.on_delivered(t, kSizes[static_cast<std::size_t>(s.tier())], 0,
                     s.tier(), 0.05);
    }
  };
  // Prompt samples until the probe upgrades back to full; returns how many
  // it took (the probe interval under the current backoff).
  const auto prompt_samples_until_full = [&] {
    for (int i = 1; i <= 50; ++i) {
      t += 0.05;
      s.on_delivered(t, kSizes[static_cast<std::size_t>(s.tier())], 0,
                     s.tier(), 0.05);
      if (s.tier() == w::Tier::kFull) return i;
    }
    return -1;
  };

  knock_down();
  ASSERT_EQ(s.tier(), w::Tier::kHalf);
  EXPECT_EQ(s.probe_backoff(), 1);

  EXPECT_EQ(prompt_samples_until_full(), 3);  // first probe: plain streak
  knock_down();                               // ...and it fails
  EXPECT_EQ(s.probe_backoff(), 2);
  EXPECT_EQ(prompt_samples_until_full(), 6);  // doubled interval
  knock_down();
  EXPECT_EQ(s.probe_backoff(), 4);
  EXPECT_EQ(prompt_samples_until_full(), 12);
  knock_down();
  EXPECT_EQ(s.probe_backoff(), 8);
  EXPECT_EQ(prompt_samples_until_full(), 24);
  knock_down();  // yet another failure cannot exceed the cap
  EXPECT_EQ(s.probe_backoff(), 8);
  EXPECT_EQ(prompt_samples_until_full(), 24);

  // This time the upgrade sticks: a full prompt streak at the richer tier
  // resets the backoff for future probes.
  for (int i = 0; i < 3; ++i) {
    t += 0.05;
    s.on_delivered(t, kSizes[0], 0, s.tier(), 0.05);
  }
  EXPECT_EQ(s.probe_backoff(), 1);
  EXPECT_EQ(s.stats_json(t).at("probe_backoff").as_number(), 1.0);
}

TEST(SessionTable, KeysSessionsAndExpiresIdleOnes) {
  w::PacingConfig config = pacing_config();
  config.idle_expiry_s = 60.0;
  w::SessionTable table(config);
  const auto a = table.acquire("a", "127.0.0.1:5", 0.0);
  const auto a2 = table.acquire("a", "127.0.0.1:5", 1.0);
  EXPECT_EQ(a.get(), a2.get());  // same id -> same session
  table.acquire("b", "", 1.0);
  EXPECT_EQ(table.size(), 2u);

  // "a" (last touched at 1.0 via acquire) and "b" both expire by t=100.
  table.acquire("c", "", 100.0);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.expired(), 2u);

  const Json stats = table.stats_json(100.0);
  EXPECT_EQ(stats.at("sessions").as_number(), 1.0);
  EXPECT_EQ(stats.at("expired").as_number(), 2.0);
  EXPECT_EQ(stats.at("tiers").at("full").as_number(), 1.0);
  EXPECT_EQ(stats.at("clients").as_array().size(), 1u);
}

TEST(SessionTable, CapsLiveSessionsAndRefusesBeyondIt) {
  w::PacingConfig config = pacing_config();
  config.max_sessions = 4;
  config.idle_expiry_s = 10.0;
  w::SessionTable table(config);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(table.acquire("id" + std::to_string(i), "", 0.0), nullptr);
  }
  // Table full: a fifth distinct id is refused (served unpaced by the
  // caller) while existing ids still resolve.
  EXPECT_EQ(table.acquire("overflow", "", 0.5), nullptr);
  EXPECT_NE(table.acquire("id2", "", 0.5), nullptr);
  EXPECT_EQ(table.size(), 4u);
  // Once the old sessions expire, new ids are admitted again.
  EXPECT_NE(table.acquire("overflow", "", 20.0), nullptr);
}

// ------------------------------------------- /api/poll param sanitizing ----

TEST(PollParams, NaNNegativeAndMalformedTimeoutsNeverReachTheHub) {
  w::AjaxFrontEnd fe(small_frontend());
  const int port = fe.start();
  while (fe.frame_seq() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // std::stod("nan") parses without throwing; it must still be rejected.
  EXPECT_EQ(w::http_get(port, "/api/poll?since=0&timeout=nan").status, 400);
  EXPECT_EQ(w::http_get(port, "/api/poll?since=0&timeout=-nan").status, 400);
  // Entirely non-numeric input is a 400, not a silent default.
  EXPECT_EQ(w::http_get(port, "/api/poll?since=0&timeout=soon").status, 400);
  EXPECT_EQ(w::http_get(port, "/api/poll?since=xyz&timeout=1").status, 400);
  // std::stoull would silently wrap "-1" to 2^64-1; it must be a 400.
  EXPECT_EQ(w::http_get(port, "/api/poll?since=-1&timeout=1").status, 400);
  // Trailing garbage is not a number either.
  EXPECT_EQ(w::http_get(port, "/api/poll?since=5xyz&timeout=1").status, 400);
  EXPECT_EQ(w::http_get(port, "/api/poll?since=0&timeout=2abc").status, 400);

  // A negative timeout clamps to zero: with a future cursor (clamped to
  // the head, waiting for the next publish) that means an immediate, clean
  // 200-timeout — not a negative deadline in the hub.
  const std::string future =
      std::to_string(fe.frame_seq() + 1000);
  const auto t0 = std::chrono::steady_clock::now();
  const auto neg =
      w::http_get(port, "/api/poll?since=" + future + "&timeout=-5");
  EXPECT_EQ(neg.status, 200);
  EXPECT_TRUE(Json::parse(neg.body).contains("timeout"));
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count(),
            2.0);

  // +inf is finite-bounded by the configured ceiling, and a frame already
  // exists, so this returns it immediately.
  const auto inf = w::http_get(port, "/api/poll?since=0&timeout=inf");
  EXPECT_EQ(inf.status, 200);
  EXPECT_GE(Json::parse(inf.body).at("seq").as_number(), 1.0);
  fe.stop();
}

// ------------------------------------------------- EINTR mid-response ----

namespace {
void noop_handler(int) {}
}  // namespace

TEST(HttpWrite, WriteAllSurvivesEintrMidResponse) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // Shrink the buffers so the writer blocks mid-body and signals land
  // inside send().
  const int small = 4096;
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(sv[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));

  // Install a no-op SIGUSR1 handler WITHOUT SA_RESTART: blocked send()
  // calls return -1/EINTR instead of resuming transparently.
  struct sigaction sa {};
  sa.sa_handler = noop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &previous), 0);

  const std::string payload(4u << 20, 'x');
  std::atomic<bool> write_ok{false};
  std::thread writer([&] {
    write_ok = w::detail::write_all(sv[0], payload.data(), payload.size());
  });
  const pthread_t handle = writer.native_handle();

  // Drain slowly while peppering the writer with signals. Signals stop
  // well before the tail so the thread is guaranteed alive for every
  // pthread_kill (the writer cannot finish while megabytes are undrained).
  std::size_t got = 0;
  char buf[8192];
  int iterations = 0;
  while (got < payload.size()) {
    if (got + (1u << 20) < payload.size()) {
      ASSERT_EQ(pthread_kill(handle, SIGUSR1), 0);
    }
    const ssize_t n = ::recv(sv[1], buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
    if (++iterations % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  writer.join();
  EXPECT_TRUE(write_ok.load());  // EINTR retried, full body delivered
  EXPECT_EQ(got, payload.size());

  ::sigaction(SIGUSR1, &previous, nullptr);
  ::close(sv[0]);
  ::close(sv[1]);
}

// ------------------------------------------------- idle read timeout ----

TEST(Http, IdleReadTimeoutGovernsAsyncResponseSurvival) {
  // Scaled-down reproduction of the 30 s constant bug: an async (long-poll
  // style) response completing after the idle read timeout dies with the
  // connection; one completing within it is delivered. The application must
  // therefore derive the read timeout from its poll configuration.
  std::vector<std::thread> repliers;
  std::mutex repliers_mutex;
  const auto slow_route = [&](const w::HttpRequest&,
                              w::HttpServer::ResponseSink sink) {
    std::lock_guard<std::mutex> lock(repliers_mutex);
    repliers.emplace_back([sink] {
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
      sink(w::HttpResponse::text("late"));
    });
  };

  {
    w::HttpServer strict;
    strict.set_idle_read_timeout(0.2);  // shorter than the response delay
    strict.route_async("GET", "/slow", slow_route);
    const int port = strict.start();
    w::HttpClient client(port);
    EXPECT_THROW(client.get("/slow", 5.0), std::runtime_error);
    {
      std::lock_guard<std::mutex> lock(repliers_mutex);
      for (auto& t : repliers) t.join();
      repliers.clear();
    }
    strict.stop();
  }
  {
    w::HttpServer lenient;
    lenient.set_idle_read_timeout(2.0);  // derived-above-the-delay behaviour
    lenient.route_async("GET", "/slow", slow_route);
    const int port = lenient.start();
    w::HttpClient client(port);
    EXPECT_EQ(client.get("/slow", 5.0).body, "late");
    {
      std::lock_guard<std::mutex> lock(repliers_mutex);
      for (auto& t : repliers) t.join();
      repliers.clear();
    }
    lenient.stop();
  }
}

TEST(AjaxFrontEnd, ReadTimeoutDerivedFromPollConfiguration) {
  // A poll timeout beyond the old hard-coded 30 s read constant is a legal
  // configuration and must not be able to kill keep-alive connections
  // mid-poll: the derived read timeout always exceeds it.
  w::FrontEndConfig config = small_frontend();
  config.poll_timeout_s = 60.0;
  w::AjaxFrontEnd fe(config);
  EXPECT_GT(fe.server().idle_read_timeout_s(), 60.0);
}

// ----------------------------------------------- end-to-end pacing ----

TEST(AjaxFrontEndPacing, SlowClientDowngradedFastClientKeepsFullTier) {
  w::AjaxFrontEnd fe(small_frontend());
  const int port = fe.start();
  while (fe.frame_seq() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const auto poll_loop = [port](const std::string& client, double delay_s,
                                double duration_s, std::string& last_tier) {
    w::HttpClient http(port);
    std::uint64_t since = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(duration_s);
    while (std::chrono::steady_clock::now() < deadline) {
      Json body;
      try {
        body = Json::parse(http.get("/api/poll?since=" + std::to_string(since) +
                                        "&timeout=1&client=" + client,
                                    5.0)
                               .body);
      } catch (const std::exception&) {
        continue;
      }
      if (body.contains("timeout")) continue;
      since = static_cast<std::uint64_t>(body.at("seq").as_number());
      if (body.contains("tier")) last_tier = body.at("tier").as_string();
      if (delay_s > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
      }
    }
  };

  std::string slow_tier = "?", fast_tier = "?";
  std::thread slow([&] { poll_loop("slow-e2e", 0.12, 2.5, slow_tier); });
  std::thread fast([&] { poll_loop("fast-e2e", 0.0, 2.5, fast_tier); });
  slow.join();
  fast.join();

  if (ricsa_test::kTimeScale > 1.0) {
    // The downgrade decision keys on absolute time constants — frame
    // cadence, goodput horizons, idle cutoffs — that an instrumented
    // build skews non-uniformly (stretching the think time instead just
    // makes the session look idle). Under TSAN this test is race
    // coverage for concurrent pollers against the session table, not a
    // pacing-outcome check.
    fe.stop();
    GTEST_SKIP() << "pacing outcome requires native-speed timing";
  }

  // The slow poller (6x the frame interval) ends on a cheaper tier; the
  // prompt one keeps the full stream.
  EXPECT_TRUE(slow_tier == "half" || slow_tier == "state") << slow_tier;
  EXPECT_EQ(fast_tier, "full");

  // /api/stats exposes the session table and per-client pacing detail.
  const Json stats = Json::parse(w::http_get(port, "/api/stats").body);
  const Json& pacing = stats.at("pacing");
  EXPECT_GE(pacing.at("sessions").as_number(), 2.0);
  bool saw_slow = false;
  for (const Json& client : pacing.at("clients").as_array()) {
    if (client.at("client").as_string() != "slow-e2e") continue;
    saw_slow = true;
    EXPECT_NE(client.at("tier").as_string(), "full");
    EXPECT_GT(client.at("goodput_Bps").as_number(), 0.0);
    EXPECT_GE(client.at("delivered").as_number(), 3.0);
    EXPECT_TRUE(client.contains("interval_s"));
    EXPECT_TRUE(client.contains("peer"));
  }
  EXPECT_TRUE(saw_slow);
  fe.stop();
}

TEST(AjaxFrontEndPacing, ClientlessPollsKeepTheLegacyContract) {
  // No `client` parameter -> no session: full tier, gap-free replay, and no
  // entry in the session table.
  w::AjaxFrontEnd fe(small_frontend());
  const int port = fe.start();
  while (fe.frame_seq() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const Json body =
      Json::parse(w::http_get(port, "/api/poll?since=0&timeout=5").body);
  EXPECT_EQ(body.at("tier").as_string(), "full");
  EXPECT_TRUE(body.contains("image_b64"));
  EXPECT_EQ(fe.sessions().size(), 0u);
  fe.stop();
}
