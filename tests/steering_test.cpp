// Steering framework tests: message protocol round-trips, the Fig. 7
// SimulationServer loop, the in-process pipeline executor, the high-level
// session, and the WAN session actors over the testbed.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cost/pipeline_builder.hpp"
#include "data/generators.hpp"
#include "hydro/steerable.hpp"
#include "netsim/testbed.hpp"
#include "steering/executor.hpp"
#include "steering/message.hpp"
#include "steering/server.hpp"
#include "steering/session.hpp"
#include "steering/wan_session.hpp"

namespace st = ricsa::steering;
namespace c = ricsa::cost;
namespace d = ricsa::data;
namespace h = ricsa::hydro;
namespace ns = ricsa::netsim;

// -------------------------------------------------------------- Message ----

TEST(Message, SerializeRoundTrip) {
  st::Message m = st::make_viz_request(7, "isosurface", 0.5f, 512, 256);
  m.sequence = 42;
  m.payload = {1, 2, 3, 4, 5};
  const auto bytes = m.serialize();
  const st::Message back = st::Message::deserialize(bytes);
  EXPECT_EQ(back.type, st::MessageType::kVizRequest);
  EXPECT_EQ(back.session, 7u);
  EXPECT_EQ(back.sequence, 42u);
  EXPECT_EQ(back.header.at("technique").as_string(), "isosurface");
  EXPECT_NEAR(back.header.at("isovalue").as_number(), 0.5, 1e-6);
  EXPECT_EQ(back.payload, m.payload);
}

TEST(Message, DeserializeRejectsGarbage) {
  EXPECT_THROW(st::Message::deserialize({}), std::runtime_error);
  EXPECT_THROW(st::Message::deserialize({1, 2, 3, 4, 5, 6, 7}),
               std::runtime_error);
  auto bytes = st::make_status(1, "ok").serialize();
  bytes[4] = 99;  // invalid type
  EXPECT_THROW(st::Message::deserialize(bytes), std::runtime_error);
}

TEST(Message, ConstructorsPopulateHeaders) {
  const auto sim = st::make_simulation_request(1, "sod_shock_tube", "pressure");
  EXPECT_EQ(sim.header.at("simulator").as_string(), "sod_shock_tube");
  const auto steer = st::make_steering_params(1, {{"gamma", 1.67}});
  EXPECT_NEAR(steer.header.at("params").at("gamma").as_number(), 1.67, 1e-9);
  EXPECT_GT(steer.wire_bytes(), 20u);
  EXPECT_STREQ(st::to_string(st::MessageType::kVrtInstall), "vrt_install");
}

// ----------------------------------------------------- SimulationServer ----

TEST(SimulationServer, Fig7LoopHandlesSteeringAndFrames) {
  h::HydroSimulation sim(h::HydroSimulation::Kind::kSod, 48);
  st::SimulationServer server(sim);

  // Client attaches and steers gamma.
  server.post(st::make_simulation_request(1, "sod", "pressure"));
  server.post(st::make_steering_params(1, {{"gamma", 1.6}}));
  server.wait_accept_connection();  // returns immediately: already connected

  // Fig. 7 main loop body.
  const int received = server.receive_handle_message();
  EXPECT_EQ(received, 1);  // new simulation parameters pending
  EXPECT_EQ(server.update_simulation_parameters(), 1);
  EXPECT_NEAR(sim.parameters().at("gamma"), 1.6, 1e-12);

  sim.advance(2);
  server.push_data_to_viz_node();
  const auto frame = server.take_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->cycle, 2);
  EXPECT_EQ(frame->variable, "pressure");
  EXPECT_EQ(frame->snapshot.nx(), 48);
  // Frame is consumed.
  EXPECT_FALSE(server.take_frame().has_value());
  EXPECT_EQ(server.frames_pushed(), 1u);
}

TEST(SimulationServer, ShutdownStopsLoop) {
  h::HydroSimulation sim(h::HydroSimulation::Kind::kSod, 16);
  st::SimulationServer server(sim);
  st::Message bye;
  bye.type = st::MessageType::kShutdown;
  server.post(bye);
  EXPECT_EQ(server.receive_handle_message(), -1);
  EXPECT_FALSE(server.running());
}

TEST(SimulationServer, RejectedParametersDontCount) {
  h::HydroSimulation sim(h::HydroSimulation::Kind::kSod, 16);
  st::SimulationServer server(sim);
  server.post(st::make_steering_params(1, {{"gamma", -1.0}, {"cfl", 0.2}}));
  EXPECT_EQ(server.receive_handle_message(), 1);
  EXPECT_EQ(server.update_simulation_parameters(), 1);  // only cfl accepted
}

TEST(SimulationServer, CStyleApiMirrorsFig7) {
  h::HydroSimulation sim(h::HydroSimulation::Kind::kSod, 16);
  st::SimulationServer* server = st::RICSA_StartupSimulationServer(&sim);
  server->post(st::make_simulation_request(1, "sod", "density"));
  st::RICSA_WaitAcceptConnection(server);
  EXPECT_EQ(st::RICSA_ReceiveHandleMessage(server), 0);
  st::RICSA_PushDataToVizNode(server);
  EXPECT_EQ(server->frames_pushed(), 1u);
  st::RICSA_UpdateSimulationParameters(server);
  st::RICSA_ShutdownSimulationServer(server);
}

TEST(SimulationServer, PostAfterShutdownStaysShutDown) {
  h::HydroSimulation sim(h::HydroSimulation::Kind::kSod, 16);
  st::SimulationServer server(sim);
  st::Message bye;
  bye.type = st::MessageType::kShutdown;
  server.post(bye);
  EXPECT_EQ(server.receive_handle_message(), -1);

  // Late messages (a client that missed the teardown) are drained but never
  // acted on; every further receive keeps reporting shutdown so a
  // `while (receive != -1)` simulation loop exits instead of spinning.
  server.post(st::make_steering_params(2, {{"cfl", 0.4}}));
  EXPECT_EQ(server.receive_handle_message(), -1);
  EXPECT_EQ(server.update_simulation_parameters(), 0);
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.receive_handle_message(), -1);
}

TEST(SimulationServer, ShutdownWakesBlockedWaitAcceptConnection) {
  // Teardown ordering: a simulation thread parked in wait_accept_connection
  // (no client ever attached) must be released by the shutdown post, not
  // deadlock.
  h::HydroSimulation sim(h::HydroSimulation::Kind::kSod, 16);
  st::SimulationServer server(sim);
  std::thread simulation([&server] {
    server.wait_accept_connection();
    EXPECT_EQ(server.receive_handle_message(), -1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  st::Message bye;
  bye.type = st::MessageType::kShutdown;
  server.post(bye);
  simulation.join();  // deadlock here = test timeout
  EXPECT_FALSE(server.running());
}

TEST(SimulationServer, WaitBlocksUntilClientConnects) {
  h::HydroSimulation sim(h::HydroSimulation::Kind::kSod, 16);
  st::SimulationServer server(sim);
  std::thread client([&server] {
    server.post(st::make_simulation_request(1, "sod", "density"));
  });
  server.wait_accept_connection();  // must not deadlock
  client.join();
  SUCCEED();
}

// -------------------------------------------------------------- Executor ----

TEST(Executor, IsosurfaceProducesImageAndStats) {
  const d::ScalarVolume vol = d::make_rage(32, 32, 32);
  c::VizRequest req;
  req.technique = c::VizRequest::Technique::kIsosurface;
  req.isovalue = 0.6f;
  req.image_width = 64;
  req.image_height = 64;
  const auto result = st::execute_pipeline(vol, req);
  EXPECT_EQ(result.image.width(), 64);
  ASSERT_TRUE(result.iso_stats.has_value());
  EXPECT_GT(result.iso_stats->triangles, 0u);
  EXPECT_GT(result.geometry_bytes, 0u);
  EXPECT_GT(result.transform_s, 0.0);
}

TEST(Executor, OctantSelectionShrinksWork) {
  const d::ScalarVolume vol = d::make_rage(32, 32, 32);
  c::VizRequest req;
  req.isovalue = 0.6f;
  req.image_width = 32;
  req.image_height = 32;
  const auto whole = st::execute_pipeline(vol, req);
  st::ExecuteOptions opt;
  opt.octant = 0;
  const auto oct = st::execute_pipeline(vol, req, opt);
  ASSERT_TRUE(whole.iso_stats && oct.iso_stats);
  EXPECT_LT(oct.iso_stats->cells_scanned, whole.iso_stats->cells_scanned);
}

TEST(Executor, DownsampleFilterShrinksWork) {
  const d::ScalarVolume vol = d::make_jet(32, 32, 32);
  c::VizRequest req;
  req.isovalue = 0.5f;
  req.image_width = 32;
  req.image_height = 32;
  st::ExecuteOptions opt;
  opt.downsample = 2;
  const auto down = st::execute_pipeline(vol, req, opt);
  const auto full = st::execute_pipeline(vol, req);
  ASSERT_TRUE(down.iso_stats && full.iso_stats);
  EXPECT_LT(down.iso_stats->cells_scanned, full.iso_stats->cells_scanned);
}

TEST(Executor, RayCastAndStreamlineTechniques) {
  const d::ScalarVolume vol = d::make_jet(24, 24, 24);
  c::VizRequest ray;
  ray.technique = c::VizRequest::Technique::kRayCast;
  ray.image_width = 32;
  ray.image_height = 32;
  const auto r = st::execute_pipeline(vol, ray);
  EXPECT_EQ(r.image.width(), 32);
  EXPECT_FALSE(r.iso_stats.has_value());

  c::VizRequest stream;
  stream.technique = c::VizRequest::Technique::kStreamline;
  stream.seeds = 27;
  stream.steps_per_seed = 50;
  stream.image_width = 32;
  stream.image_height = 32;
  const auto s = st::execute_pipeline(vol, stream);
  EXPECT_GT(s.geometry_bytes, 0u);
}

// --------------------------------------------------------------- Session ----

TEST(Session, FramesAdvanceAndCarryVrt) {
  st::SessionConfig config;
  config.simulation = h::HydroSimulation::Kind::kSod;
  config.resolution = 48;
  config.viz.image_width = 48;
  config.viz.image_height = 48;
  config.viz.isovalue = 0.5f;
  st::SteeringSession session(config);

  const auto f1 = session.next_frame();
  const auto f2 = session.next_frame();
  EXPECT_GT(f2.cycle, f1.cycle);
  EXPECT_GT(f2.sim_time, f1.sim_time);
  EXPECT_EQ(f1.image.width(), 48);
  EXPECT_TRUE(f1.vrt.valid());
  // VRT routes from GaTech (the DS) to ORNL (the client).
  EXPECT_EQ(f1.vrt.path().front(), 5);  // GaTech id in the testbed
  EXPECT_EQ(f1.vrt.path().back(), 0);   // ORNL
}

TEST(Session, SteeringTakesEffectNextFrame) {
  st::SessionConfig config;
  config.simulation = h::HydroSimulation::Kind::kSod;
  config.resolution = 32;
  config.viz.image_width = 32;
  config.viz.image_height = 32;
  st::SteeringSession session(config);
  session.next_frame();
  session.steer("gamma", 1.7);
  session.next_frame();
  EXPECT_NEAR(session.parameters().at("gamma"), 1.7, 1e-12);
}

TEST(Session, VariableSwitching) {
  st::SessionConfig config;
  config.simulation = h::HydroSimulation::Kind::kSod;
  config.resolution = 32;
  config.viz.image_width = 32;
  config.viz.image_height = 32;
  st::SteeringSession session(config);
  session.set_variable("pressure");
  const auto frame = session.next_frame();
  EXPECT_EQ(frame.variable, "pressure");
}

// ------------------------------------------------------------ WanSession ----

namespace {
st::WanSessionConfig testbed_session(const ns::Testbed& tb,
                                     std::size_t raw_bytes) {
  st::WanSessionConfig config;
  config.client = tb.ornl;
  config.central_manager = tb.lsu;
  config.data_source = tb.gatech;
  config.profile = c::NetworkProfile::from_network(*tb.net);
  config.spec = ricsa::pipeline::make_isosurface_pipeline(
      raw_bytes, 1.0, raw_bytes / 5, 1 << 20);
  return config;
}
}  // namespace

TEST(WanSession, CompletesAndSeparatesPhases) {
  ns::Testbed tb = ns::make_testbed();
  const auto config = testbed_session(tb, 16 * 1000 * 1000);
  const auto result = st::run_wan_session(*tb.net, config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.control_s, 0.0);
  EXPECT_GT(result.data_path_s, 1.0);  // 16 MB can't cross a ~10 MB/s WAN faster
  EXPECT_NEAR(result.total_s, result.control_s + result.data_path_s, 1e-9);
  EXPECT_FALSE(result.timeline.empty());
  EXPECT_TRUE(result.vrt.valid());
}

TEST(WanSession, OptimalBeatsPcPcBaseline) {
  // DP-chosen loop vs the ORNL-GaTech-ORNL client/server baseline on a
  // 64 MB dataset: the optimal loop must win (Fig. 9's headline).
  ns::Testbed tb1 = ns::make_testbed();
  const auto optimal_cfg = testbed_session(tb1, 64 * 1000 * 1000);
  const auto optimal = st::run_wan_session(*tb1.net, optimal_cfg);
  ASSERT_TRUE(optimal.completed);

  ns::Testbed tb2 = ns::make_testbed();
  auto pcpc_cfg = testbed_session(tb2, 64 * 1000 * 1000);
  // source, filter, extract at GaTech; render, display at ORNL (the paper's
  // PC-PC split: no graphics card at GaTech).
  pcpc_cfg.fixed_assignment = std::vector<int>{tb2.gatech, tb2.gatech,
                                               tb2.gatech, tb2.ornl, tb2.ornl};
  const auto pcpc = st::run_wan_session(*tb2.net, pcpc_cfg);
  ASSERT_TRUE(pcpc.completed);

  EXPECT_LT(optimal.data_path_s, pcpc.data_path_s);
}

TEST(WanSession, AnalyticTransportMatchesPredictionClosely) {
  ns::Testbed tb = ns::make_testbed();
  auto config = testbed_session(tb, 8 * 1000 * 1000);
  config.packet_transport = false;
  const auto result = st::run_wan_session(*tb.net, config);
  ASSERT_TRUE(result.completed);
  // Analytic mode reproduces the Eq. 2 prediction up to the distribution
  // overhead term (which Eq. 2 does not carry).
  EXPECT_NEAR(result.data_path_s, result.vrt.predicted_delay_s, 2.0);
}

TEST(WanSession, PacketTransportSlowerThanAnalytic) {
  // Packet-level transport pays header overhead, pacing and loss recovery;
  // it must come in slower than the idealized analytic transfer but within
  // a sane factor.
  ns::Testbed tb1 = ns::make_testbed();
  auto cfg1 = testbed_session(tb1, 16 * 1000 * 1000);
  cfg1.packet_transport = false;
  const auto analytic = st::run_wan_session(*tb1.net, cfg1);

  ns::Testbed tb2 = ns::make_testbed();
  auto cfg2 = testbed_session(tb2, 16 * 1000 * 1000);
  const auto packet = st::run_wan_session(*tb2.net, cfg2);

  ASSERT_TRUE(analytic.completed && packet.completed);
  EXPECT_GT(packet.data_path_s, analytic.data_path_s * 0.8);
  EXPECT_LT(packet.data_path_s, analytic.data_path_s * 3.0);
}

TEST(WanSession, InfeasibleFixedAssignmentFailsCleanly) {
  ns::Testbed tb = ns::make_testbed();
  auto config = testbed_session(tb, 1000000);
  // LSU has no link to UT: this assignment is unroutable.
  config.fixed_assignment = std::vector<int>{tb.gatech, tb.lsu, tb.ut, tb.ut,
                                             tb.ornl};
  const auto result = st::run_wan_session(*tb.net, config);
  EXPECT_FALSE(result.completed);
}
