// Tests for volumes, block decomposition / octants, dataset generators and
// the RDF container format.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/generators.hpp"
#include "data/octree.hpp"
#include "data/rdf_io.hpp"
#include "data/volume.hpp"

namespace d = ricsa::data;

// ----------------------------------------------------------------- Vec3 ----

TEST(Vec3, Arithmetic) {
  const d::Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_FLOAT_EQ((a + b).x, 5);
  EXPECT_FLOAT_EQ((b - a).z, 3);
  EXPECT_FLOAT_EQ((a * 2).y, 4);
  EXPECT_FLOAT_EQ(a.dot(b), 32);
  const d::Vec3 c = d::Vec3{1, 0, 0}.cross(d::Vec3{0, 1, 0});
  EXPECT_FLOAT_EQ(c.z, 1);
  EXPECT_NEAR((d::Vec3{3, 4, 0}).norm(), 5.0f, 1e-6f);
  EXPECT_NEAR((d::Vec3{0, 0, 9}).normalized().z, 1.0f, 1e-6f);
  EXPECT_FLOAT_EQ((d::Vec3{}).normalized().norm(), 0.0f);  // zero-safe
}

// --------------------------------------------------------- ScalarVolume ----

TEST(ScalarVolume, IndexingAndBytes) {
  d::ScalarVolume v(4, 5, 6, "rho");
  EXPECT_EQ(v.voxels(), 120u);
  EXPECT_EQ(v.bytes(), 480u);
  EXPECT_EQ(v.variable(), "rho");
  v.at(3, 4, 5) = 7.5f;
  EXPECT_FLOAT_EQ(v.at(3, 4, 5), 7.5f);
  EXPECT_THROW(v.at(4, 0, 0), std::out_of_range);
  EXPECT_THROW(v.at(0, -1, 0), std::out_of_range);
  EXPECT_THROW(d::ScalarVolume(0, 1, 1), std::invalid_argument);
}

TEST(ScalarVolume, TrilinearSampleExactAtVoxels) {
  d::ScalarVolume v(3, 3, 3);
  for (int z = 0; z < 3; ++z)
    for (int y = 0; y < 3; ++y)
      for (int x = 0; x < 3; ++x) v.at(x, y, z) = static_cast<float>(x + 10 * y + 100 * z);
  EXPECT_FLOAT_EQ(v.sample(1, 2, 0), 21.0f);
  EXPECT_FLOAT_EQ(v.sample(0.5f, 0, 0), 0.5f);      // linear in x
  EXPECT_FLOAT_EQ(v.sample(0, 0.5f, 0), 5.0f);      // linear in y
  EXPECT_FLOAT_EQ(v.sample(0, 0, 0.5f), 50.0f);     // linear in z
  EXPECT_FLOAT_EQ(v.sample(-5, -5, -5), 0.0f);      // clamped
  EXPECT_FLOAT_EQ(v.sample(99, 99, 99), 222.0f);    // clamped
}

TEST(ScalarVolume, SampleReproducesLinearField) {
  d::ScalarVolume v = d::make_ramp(8, 8, 8);
  EXPECT_NEAR(v.sample(3.25f, 2.0f, 5.5f), 3.25f, 1e-5f);
}

TEST(ScalarVolume, GradientOfRampIsUnitX) {
  d::ScalarVolume v = d::make_ramp(16, 16, 16);
  const d::Vec3 g = v.gradient(8, 8, 8);
  EXPECT_NEAR(g.x, 1.0f, 1e-5f);
  EXPECT_NEAR(g.y, 0.0f, 1e-5f);
  EXPECT_NEAR(g.z, 0.0f, 1e-5f);
}

TEST(ScalarVolume, MinMax) {
  d::ScalarVolume v(2, 2, 2);
  v.at(0, 0, 0) = -3.0f;
  v.at(1, 1, 1) = 9.0f;
  const auto [lo, hi] = v.min_max();
  EXPECT_FLOAT_EQ(lo, -3.0f);
  EXPECT_FLOAT_EQ(hi, 9.0f);
}

// --------------------------------------------------------- VectorVolume ----

TEST(VectorVolume, SampleInterpolates) {
  d::VectorVolume v(2, 2, 2);
  v.at(0, 0, 0) = {0, 0, 0};
  v.at(1, 0, 0) = {2, 0, 0};
  const d::Vec3 s = v.sample(0.5f, 0, 0);
  EXPECT_NEAR(s.x, 1.0f, 1e-6f);
  EXPECT_TRUE(v.inside(0.5f, 0.5f, 0.5f));
  EXPECT_FALSE(v.inside(1.5f, 0, 0));
  EXPECT_FALSE(v.inside(-0.1f, 0, 0));
}

// --------------------------------------------------- BlockDecomposition ----

TEST(Blocks, CoversAllCellsExactlyOnce) {
  const d::ScalarVolume v = d::make_sphere(33, 12.0f);
  const d::BlockDecomposition blocks(v, 8);
  std::int64_t cells = 0;
  for (const auto& b : blocks.blocks()) cells += b.cells();
  EXPECT_EQ(cells, 32LL * 32 * 32);
}

TEST(Blocks, RangesAreConservative) {
  const d::ScalarVolume v = d::make_sphere(17, 6.0f);
  const d::BlockDecomposition blocks(v, 4);
  for (const auto& b : blocks.blocks()) {
    for (int z = b.z0; z <= b.z1; ++z) {
      for (int y = b.y0; y <= b.y1; ++y) {
        for (int x = b.x0; x <= b.x1; ++x) {
          EXPECT_GE(v.at(x, y, z), b.min);
          EXPECT_LE(v.at(x, y, z), b.max);
        }
      }
    }
  }
}

TEST(Blocks, ActiveBlockCullingMatchesBruteForce) {
  const d::ScalarVolume v = d::make_sphere(25, 9.0f);
  const d::BlockDecomposition blocks(v, 8);
  const float iso = 0.0f;
  std::size_t manual = 0;
  for (const auto& b : blocks.blocks()) manual += (b.min <= iso && iso <= b.max);
  EXPECT_EQ(blocks.active_blocks(iso), manual);
  EXPECT_GT(blocks.active_blocks(iso), 0u);
  EXPECT_LT(blocks.active_blocks(iso), blocks.blocks().size());
  // An isovalue outside the data range activates nothing.
  EXPECT_EQ(blocks.active_blocks(1e9f), 0u);
}

TEST(Blocks, OctantsPartitionBlocks) {
  const d::ScalarVolume v = d::make_sphere(33, 10.0f);
  const d::BlockDecomposition blocks(v, 8);
  std::size_t total = 0;
  for (int o = 0; o < 8; ++o) total += blocks.octant_blocks(o).size();
  EXPECT_EQ(total, blocks.blocks().size());
  EXPECT_THROW(blocks.octant_blocks(8), std::invalid_argument);
}

TEST(Blocks, OctantVolumeDimensions) {
  const d::ScalarVolume v = d::make_sphere(32, 10.0f);
  const d::ScalarVolume oct0 = d::BlockDecomposition::octant_volume(v, 0);
  EXPECT_EQ(oct0.nx(), 17);  // lower half + shared midplane
  const d::ScalarVolume oct7 = d::BlockDecomposition::octant_volume(v, 7);
  EXPECT_EQ(oct7.nx(), 16);
  // Octant 7's first voxel equals the parent's mid voxel.
  EXPECT_FLOAT_EQ(oct7.at(0, 0, 0), v.at(16, 16, 16));
}

TEST(Blocks, RejectsDegenerateInput) {
  const d::ScalarVolume v = d::make_sphere(8, 3.0f);
  EXPECT_THROW(d::BlockDecomposition(v, 0), std::invalid_argument);
  d::ScalarVolume flat(1, 8, 8);
  EXPECT_THROW(d::BlockDecomposition(flat, 4), std::invalid_argument);
}

// ----------------------------------------------------------- Generators ----

TEST(Generators, Deterministic) {
  const d::ScalarVolume a = d::make_jet(16, 16, 16, 42);
  const d::ScalarVolume b = d::make_jet(16, 16, 16, 42);
  const d::ScalarVolume c = d::make_jet(16, 16, 16, 43);
  EXPECT_EQ(a.raw(), b.raw());
  EXPECT_NE(a.raw(), c.raw());
}

TEST(Generators, JetHasCentralPlume) {
  const d::ScalarVolume v = d::make_jet(32, 32, 32);
  // Core of the plume is denser than the corner.
  EXPECT_GT(v.at(16, 16, 4), v.at(1, 1, 4));
}

TEST(Generators, RageHasShellStructure) {
  const d::ScalarVolume v = d::make_rage(48, 48, 48);
  const int c = 24;
  const float center = v.at(c, c, c);
  const float shell = v.at(c + 15, c, c);  // near the blast front (0.62*24~15)
  const float corner = v.at(1, 1, 1);
  EXPECT_GT(shell, center);
  EXPECT_GT(shell, corner);
}

TEST(Generators, ViswomanHasTissueBands) {
  const d::ScalarVolume v = d::make_viswoman(48, 48, 48);
  const auto [lo, hi] = v.min_max();
  EXPECT_LT(lo, 0.1f);  // air
  EXPECT_GT(hi, 0.8f);  // bone
}

TEST(Generators, SphereIsoSurfaceAtKnownRadius) {
  const d::ScalarVolume v = d::make_sphere(33, 10.0f);
  EXPECT_GT(v.at(16, 16, 16), 0.0f);  // inside positive
  EXPECT_LT(v.at(0, 0, 0), 0.0f);     // corner negative
  EXPECT_NEAR(v.at(26, 16, 16), 0.0f, 1e-4f);  // on the surface
}

TEST(Generators, PaperScaleSpecsMatchQuotedBytes) {
  EXPECT_EQ(d::dataset_spec("jet").bytes, 16384000u);       // ~16 MB
  EXPECT_EQ(d::dataset_spec("rage").bytes, 64012032u);      // ~64 MB
  EXPECT_EQ(d::dataset_spec("viswoman").bytes, 108000000u); // ~108 MB
  EXPECT_THROW(d::dataset_spec("nope"), std::invalid_argument);
}

TEST(Generators, ScaledDatasetFactory) {
  const d::ScalarVolume v = d::make_dataset("jet", 0.1);
  EXPECT_EQ(v.nx(), 16);
  EXPECT_GT(v.bytes(), 0u);
}

TEST(Generators, VectorFields) {
  const d::VectorVolume rot = d::make_rotation(17);
  // Solid-body rotation: velocity at center is ~0, at edge is tangential.
  EXPECT_NEAR(rot.at(8, 8, 8).norm(), 0.0f, 1e-5f);
  EXPECT_GT(rot.at(16, 8, 8).norm(), 7.0f);
  const d::VectorVolume uni = d::make_uniform_flow(9);
  EXPECT_FLOAT_EQ(uni.at(4, 4, 4).x, 1.0f);
  const d::VectorVolume tor = d::make_tornado(17);
  EXPECT_GT(tor.at(2, 2, 8).z, 0.0f);  // updraft everywhere
}

// ------------------------------------------------------------------ RDF ----

TEST(Rdf, SerializeRoundTrip) {
  const d::ScalarVolume v = d::make_jet(12, 10, 8, 5);
  const auto bytes = d::rdf_serialize(v);
  const d::ScalarVolume back = d::rdf_deserialize(bytes);
  EXPECT_EQ(back.nx(), 12);
  EXPECT_EQ(back.ny(), 10);
  EXPECT_EQ(back.nz(), 8);
  EXPECT_EQ(back.variable(), v.variable());
  EXPECT_EQ(back.raw(), v.raw());
}

TEST(Rdf, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "ricsa_test.rdf";
  const d::ScalarVolume v = d::make_sphere(9, 3.0f);
  d::rdf_write(path.string(), v);
  const d::ScalarVolume back = d::rdf_read(path.string());
  EXPECT_EQ(back.raw(), v.raw());
  std::filesystem::remove(path);
}

TEST(Rdf, RejectsCorruptInput) {
  const d::ScalarVolume v = d::make_sphere(5, 2.0f);
  auto bytes = d::rdf_serialize(v);
  bytes[0] ^= 0xFF;  // break magic
  EXPECT_THROW(d::rdf_deserialize(bytes), std::runtime_error);
  auto truncated = d::rdf_serialize(v);
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(d::rdf_deserialize(truncated), std::runtime_error);
  EXPECT_THROW(d::rdf_read("/nonexistent/path.rdf"), std::runtime_error);
}
