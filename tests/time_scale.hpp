// Sanitizer-aware wall-clock scaling for throughput assertions.
//
// The TSAN CI job runs these same suites with every memory access
// instrumented — 5-15x slower than native, more on starved runners.
// Tests that assert "at least N deliveries within T seconds" keep their
// assertions (gap-freedom, ordering, and tier outcomes are not timing
// artifacts) but stretch T so the instrumented build sees the same
// number of frames a native run does.
#pragma once

#include <chrono>

#if defined(__SANITIZE_THREAD__)
#define RICSA_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RICSA_TEST_TSAN 1
#endif
#endif
#ifndef RICSA_TEST_TSAN
#define RICSA_TEST_TSAN 0
#endif

namespace ricsa_test {

inline constexpr double kTimeScale = RICSA_TEST_TSAN ? 8.0 : 1.0;

/// A native wall-clock window, widened for this build's instrumentation.
inline std::chrono::milliseconds scaled_ms(int native_ms) {
  return std::chrono::milliseconds(
      static_cast<long>(static_cast<double>(native_ms) * kTimeScale));
}

}  // namespace ricsa_test
