// Concurrency tests for the long-poll broadcast hub: 64 simultaneous
// browsers (including a slow-consumer mix) against one AjaxFrontEnd, plus
// FrameHub unit coverage for delta encoding, window eviction, timeouts and
// shutdown ordering.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "time_scale.hpp"
#include "util/json.hpp"
#include "web/frontend.hpp"
#include "web/http.hpp"
#include "web/hub.hpp"

namespace w = ricsa::web;
using ricsa::util::Json;

namespace {

w::FrontEndConfig fast_config() {
  w::FrontEndConfig config;
  config.session.resolution = 12;
  config.session.cycles_per_frame = 1;
  config.frame_interval_s = 0.02;
  config.frame_window = 256;
  config.hub_workers = 4;
  return config;
}

struct ClientLog {
  std::vector<std::uint64_t> seqs;
  int errors = 0;
};

/// Long-poll until `deadline`, recording every received frame seq.
void poll_loop(int port, std::chrono::steady_clock::time_point deadline,
               double inter_poll_delay_s, ClientLog& log) {
  w::HttpClient http(port);
  std::uint64_t since = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    Json body;
    try {
      body = Json::parse(
          http.get("/api/poll?since=" + std::to_string(since) +
                       "&delta=1&timeout=1",
                   5.0)
              .body);
    } catch (const std::exception&) {
      ++log.errors;
      continue;
    }
    if (body.contains("timeout")) continue;
    const auto seq = static_cast<std::uint64_t>(body.at("seq").as_number());
    if (seq <= since) {
      ++log.errors;  // hub must never move a cursor backwards
      continue;
    }
    log.seqs.push_back(seq);
    since = seq;
    if (inter_poll_delay_s > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(inter_poll_delay_s));
    }
  }
}

}  // namespace

// ------------------------------------------------- 64 concurrent pollers ----

TEST(WebConcurrency, SixtyFourPollersSeeGapFreeStrictlyIncreasingStreams) {
  w::AjaxFrontEnd frontend(fast_config());
  const int port = frontend.start();

  constexpr int kClients = 64;
  constexpr int kSlowEvery = 8;  // every 8th client is a slow consumer
  const auto deadline =
      std::chrono::steady_clock::now() + ricsa_test::scaled_ms(2500);

  std::vector<ClientLog> logs(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::atomic<bool> steering_done{false};
  for (int i = 0; i < kClients; ++i) {
    const double delay = (i % kSlowEvery == 0) ? 0.06 : 0.0;
    clients.emplace_back(poll_loop, port, deadline, delay, std::ref(logs[i]));
  }
  // Steering POSTs land while everyone is polling.
  std::thread steerer([port, &steering_done] {
    for (int k = 0; k < 10; ++k) {
      const auto r = w::http_post(port, "/api/steer",
                                  "{\"cfl\": 0." + std::to_string(k + 1) + "}");
      EXPECT_EQ(r.status, 200);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    steering_done = true;
  });

  for (auto& t : clients) t.join();
  steerer.join();
  EXPECT_TRUE(steering_done.load());
  EXPECT_GE(frontend.steer_count(), 10u);

  for (int i = 0; i < kClients; ++i) {
    const ClientLog& log = logs[i];
    EXPECT_EQ(log.errors, 0) << "client " << i;
    // No starvation: every client — slow consumers included — made progress.
    ASSERT_GE(log.seqs.size(), 3u) << "client " << i;
    // Strictly increasing AND gap-free: the retention window replays every
    // frame in order to clients that fall behind.
    for (std::size_t k = 1; k < log.seqs.size(); ++k) {
      ASSERT_EQ(log.seqs[k], log.seqs[k - 1] + 1)
          << "client " << i << " saw a gap at poll " << k;
    }
  }
  frontend.stop();
}

TEST(WebConcurrency, SteeredParameterReachesAllWatchers) {
  w::AjaxFrontEnd frontend(fast_config());
  const int port = frontend.start();

  ASSERT_EQ(w::http_post(port, "/api/steer", "{\"cfl\": 0.123}").status, 200);

  // The parameter must show up in the monitored state within a few frames.
  w::HttpClient http(port);
  bool seen = false;
  std::uint64_t since = 0;
  for (int attempt = 0; attempt < 100 && !seen; ++attempt) {
    const Json body = Json::parse(
        http.get("/api/poll?since=" + std::to_string(since) + "&timeout=1", 5.0)
            .body);
    if (body.contains("timeout")) continue;
    since = static_cast<std::uint64_t>(body.at("seq").as_number());
    const Json& params = body.at("state").at("parameters");
    seen = params.contains("cfl") &&
           std::abs(params.at("cfl").as_number() - 0.123) < 1e-9;
  }
  EXPECT_TRUE(seen);
  frontend.stop();
}

// ------------------------------------------------------------- FrameHub ----

namespace {
Json state_of(const char* cycle, double value) {
  Json s;
  s["variable"] = cycle;
  s["value"] = value;
  return s;
}
}  // namespace

TEST(FrameHub, DeltaBodyCarriesOnlyChangedKeys) {
  w::FrameHub hub(w::FrameHub::Config{4, 1, 5.0});
  hub.publish(state_of("density", 1.0), std::vector<std::uint8_t>{0xAA, 0xBB});
  hub.publish(state_of("density", 2.0),
              std::vector<std::uint8_t>{0xAA, 0xBB});  // same image bytes

  const w::FramePtr frame = hub.latest();
  ASSERT_TRUE(frame);
  EXPECT_EQ(frame->seq, 2u);
  EXPECT_EQ(frame->delta_keys, 1u);  // only "value" changed
  EXPECT_FALSE(frame->image_changed);

  const Json delta = Json::parse(frame->body(w::Tier::kFull, true));
  EXPECT_TRUE(delta.at("delta").as_bool());
  EXPECT_TRUE(delta.at("state").contains("value"));
  EXPECT_FALSE(delta.at("state").contains("variable"));
  EXPECT_FALSE(delta.contains("image_b64"));  // image unchanged -> omitted

  const Json full = Json::parse(frame->body(w::Tier::kFull, false));
  EXPECT_TRUE(full.at("state").contains("variable"));
  EXPECT_TRUE(full.contains("image_b64"));
  EXPECT_EQ(full.at("tier").as_string(), "full");

  // The state-only tier never carries an image; the half tier reuses the
  // given PNG bytes when publish() received pre-encoded input.
  const Json state_only = Json::parse(frame->body(w::Tier::kStateOnly, false));
  EXPECT_FALSE(state_only.contains("image_b64"));
  EXPECT_EQ(state_only.at("tier").as_string(), "state");
  EXPECT_TRUE(state_only.at("state").contains("variable"));
}

TEST(FrameHub, WindowEvictionBoundsMemoryAndJumpsMinimally) {
  w::FrameHub hub(w::FrameHub::Config{3, 1, 5.0});
  for (int i = 1; i <= 10; ++i) hub.publish(state_of("density", i), std::vector<std::uint8_t>{});

  EXPECT_EQ(hub.seq(), 10u);
  EXPECT_EQ(hub.oldest_retained(), 8u);  // window of 3: frames 8, 9, 10

  // A cursor inside the window replays the exact next frame...
  ASSERT_TRUE(hub.next_after(8));
  EXPECT_EQ(hub.next_after(8)->seq, 9u);
  // ...a cursor that fell past the edge jumps to the oldest retained frame.
  ASSERT_TRUE(hub.next_after(2));
  EXPECT_EQ(hub.next_after(2)->seq, 8u);
  // ...and a current cursor has nothing to read.
  EXPECT_EQ(hub.next_after(10), nullptr);
}

TEST(FrameHub, WaitAsyncCompletesInlineWhenFrameExists) {
  w::FrameHub hub(w::FrameHub::Config{4, 1, 5.0});
  hub.publish(state_of("density", 1.0), std::vector<std::uint8_t>{});

  std::atomic<bool> done{false};
  hub.wait_async(0, 1.0, [&](w::FramePtr frame) {
    EXPECT_TRUE(frame);
    EXPECT_EQ(frame->seq, 1u);
    done = true;
  });
  EXPECT_TRUE(done.load());  // no frame to wait for: completed on our thread
}

TEST(FrameHub, WaitAsyncFiresOnPublishFromWorkerThread) {
  w::FrameHub hub(w::FrameHub::Config{4, 2, 5.0});
  std::atomic<std::uint64_t> got{0};
  hub.wait_async(0, 5.0, [&](w::FramePtr frame) {
    got = frame ? frame->seq : 0;
  });
  EXPECT_EQ(got.load(), 0u);  // parked

  hub.publish(state_of("density", 1.0), std::vector<std::uint8_t>{});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (got.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(got.load(), 1u);
}

TEST(FrameHub, WaitTimesOutWithoutAFrame) {
  w::FrameHub hub(w::FrameHub::Config{4, 1, 5.0});
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(hub.wait(0, 0.05), nullptr);
  EXPECT_GE(std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count(),
            0.045);
  EXPECT_EQ(hub.stats().timeouts, 1u);
}

TEST(FrameHub, AsyncWaiterTimesOutViaSweeper) {
  w::FrameHub hub(w::FrameHub::Config{4, 1, 5.0});
  std::atomic<int> state{0};  // 0 pending, 1 null-completion, 2 got a frame
  hub.wait_async(0, 0.05, [&](w::FramePtr frame) {
    state = frame ? 2 : 1;
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (state.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(state.load(), 1);
}

TEST(FrameHub, ShutdownFlushesParkedWaitersAndRefusesNewOnes) {
  w::FrameHub hub(w::FrameHub::Config{4, 2, 5.0});
  std::atomic<int> completions{0};
  for (int i = 0; i < 8; ++i) {
    hub.wait_async(0, 30.0, [&](w::FramePtr frame) {
      EXPECT_EQ(frame, nullptr);
      ++completions;
    });
  }
  hub.shutdown();
  // shutdown() joins the pool: every callback has run by now.
  EXPECT_EQ(completions.load(), 8);

  // Post-shutdown interactions are inert, not crashes.
  EXPECT_EQ(hub.publish(state_of("density", 1.0), std::vector<std::uint8_t>{}),
            0u);
  std::atomic<bool> refused{false};
  hub.wait_async(0, 1.0, [&](w::FramePtr frame) {
    EXPECT_EQ(frame, nullptr);
    refused = true;
  });
  EXPECT_TRUE(refused.load());
  EXPECT_EQ(hub.wait(0, 0.01), nullptr);
}

TEST(FrameHub, FutureCursorsResyncInsteadOfParkingForever) {
  w::FrameHub hub(w::FrameHub::Config{.window = 4, .workers = 1,
                                      .max_wait_s = 5.0});
  // A cursor claiming to be at seq 100 (stale client whose server restarted
  // and re-counts from 1) can never be satisfied in this epoch. The old
  // contract parked it until timeout — and the client, echoing the same
  // stale cursor each poll, parked forever. It is now clamped to the head
  // and resynced with the *next published* frame (not instantly: pre-resync
  // clients ignore sub-cursor frames and would re-poll at wire speed): an
  // empty hub serves it the first frame published...
  std::atomic<int> fired{0};
  hub.wait_async(100, 5.0, [&](w::FramePtr frame) {
    ASSERT_NE(frame, nullptr);
    EXPECT_EQ(frame->seq, 1u);
    ++fired;
  });
  hub.publish(state_of("density", 1.0), std::vector<std::uint8_t>{});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fired.load(), 1);

  // ...and a hub that already holds frames parks it only until the next
  // publish, which serves that new frame — never the stale-cursor limbo.
  std::atomic<int> resynced{0};
  hub.wait_async(100, 5.0, [&](w::FramePtr frame) {
    ASSERT_NE(frame, nullptr);
    EXPECT_EQ(frame->seq, 2u);
    ++resynced;
  });
  EXPECT_EQ(resynced.load(), 0);  // parked, not answered instantly
  hub.publish(state_of("density", 2.0), std::vector<std::uint8_t>{});
  while (resynced.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(resynced.load(), 1);

  // The blocking flavour resyncs the same way.
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    hub.publish(state_of("density", 3.0), std::vector<std::uint8_t>{});
  });
  const w::FramePtr blocking = hub.wait(500, 5.0);
  publisher.join();
  ASSERT_NE(blocking, nullptr);
  EXPECT_EQ(blocking->seq, 3u);
}

// ------------------------------------------------------ HttpClient reuse ----

TEST(HttpClient, KeepAliveConnectionSurvivesManyRequests) {
  w::AjaxFrontEnd frontend(fast_config());
  const int port = frontend.start();

  w::HttpClient http(port);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(http.get("/api/state", 5.0).status, 200);
  }
  EXPECT_EQ(http.reconnects(), 0);  // one TCP connection for all 20
  frontend.stop();
}

// ------------------------------------------------- multi-reactor server ----

namespace {

/// Hammer a multi-reactor HttpServer with keep-alive clients and verify
/// every response, whichever reactor owns the connection.
void exercise_multireactor(w::HttpServer& server, int clients,
                           int requests_each) {
  const int port = server.start();
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      w::HttpClient http(port);
      for (int r = 0; r < requests_each; ++r) {
        try {
          const auto response =
              http.get("/echo?c=" + std::to_string(c), 10.0);
          if (response.status == 200 &&
              response.body == "c=" + std::to_string(c)) {
            ++ok;
          }
        } catch (const std::exception&) {
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), clients * requests_each);
  // Keep-alive held: each client should have connected exactly once, so
  // the total served matches the request count.
  EXPECT_EQ(server.requests_served(),
            static_cast<std::uint64_t>(clients * requests_each));
  server.stop();
}

w::HttpServer::Handler echo_handler() {
  return [](const w::HttpRequest& request) {
    return w::HttpResponse::text(request.query);
  };
}

}  // namespace

TEST(MultiReactor, ReusePortAcceptServesKeepAliveClientsAcrossReactors) {
  w::HttpServer server;
  server.set_reactors(4);
  ASSERT_EQ(server.reactor_count(), 4u);
  server.route("GET", "/echo", echo_handler());
  exercise_multireactor(server, 16, 25);
}

TEST(MultiReactor, HandOffAcceptServesKeepAliveClientsAcrossReactors) {
  w::HttpServer server;
  server.set_reactors(4);
  server.set_accept_mode(w::HttpServer::AcceptMode::kHandOff);
  server.route("GET", "/echo", echo_handler());
  exercise_multireactor(server, 16, 25);
}

TEST(MultiReactor, SingleReactorPathUnchanged) {
  w::HttpServer server;  // default: one reactor, plain listener
  ASSERT_EQ(server.reactor_count(), 1u);
  server.route("GET", "/echo", echo_handler());
  exercise_multireactor(server, 8, 10);
}

TEST(MultiReactor, FrontEndPollsAndStreamsAcrossFourReactors) {
  // The full stack — hub sweeps on reactor 0, connections owned by any of
  // the four loops, async poll completions posted to each connection's
  // home reactor — must behave exactly like the single-loop server.
  w::FrontEndConfig config = fast_config();
  config.reactors = 4;
  w::AjaxFrontEnd fe(config);
  const int port = fe.start();
  while (fe.frame_seq() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + ricsa_test::scaled_ms(6000);
  constexpr int kPollers = 16;
  std::vector<ClientLog> logs(kPollers);
  std::vector<std::thread> threads;
  for (int i = 0; i < kPollers; ++i) {
    threads.emplace_back([&, i] {
      w::HttpClient http(port);
      std::uint64_t since = 0;
      while (logs[i].seqs.size() < 8 &&
             std::chrono::steady_clock::now() < deadline) {
        Json body;
        try {
          body = Json::parse(http.get("/api/poll?since=" +
                                          std::to_string(since) +
                                          "&delta=1&timeout=1",
                                      5.0)
                                 .body);
        } catch (const std::exception&) {
          ++logs[i].errors;
          continue;
        }
        if (body.contains("timeout")) continue;
        const auto seq =
            static_cast<std::uint64_t>(body.at("seq").as_number());
        if (seq <= since) {
          ++logs[i].errors;
          continue;
        }
        logs[i].seqs.push_back(seq);
        since = seq;
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kPollers; ++i) {
    EXPECT_EQ(logs[i].errors, 0) << "poller " << i;
    ASSERT_GE(logs[i].seqs.size(), 8u) << "poller " << i;
    for (std::size_t k = 1; k < logs[i].seqs.size(); ++k) {
      // In-window pollers ride the gap-free contract reactor-independent.
      ASSERT_EQ(logs[i].seqs[k], logs[i].seqs[k - 1] + 1)
          << "poller " << i << " step " << k;
    }
  }
  fe.stop();
}
