// Unit tests for the ricsa::util substrate: PRNG determinism, statistics,
// regression, serialization round-trips, JSON, base64, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

#include "util/base64.hpp"
#include "util/bytes.hpp"
#include "util/json.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace u = ricsa::util;

// ---------------------------------------------------------------- PRNG ----

TEST(Prng, SameSeedSameStream) {
  u::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge) {
  u::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Prng, UniformInUnitInterval) {
  u::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Prng, UniformMeanNearHalf) {
  u::Xoshiro256 rng(11);
  u::RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Prng, UniformIntCoversRangeInclusive) {
  u::Xoshiro256 rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Prng, NormalMoments) {
  u::Xoshiro256 rng(17);
  u::RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Prng, ExponentialMean) {
  u::Xoshiro256 rng(19);
  u::RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Prng, BernoulliFrequency) {
  u::Xoshiro256 rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.2);
  EXPECT_NEAR(hits / 100000.0, 0.2, 0.01);
}

TEST(Prng, ForkIndependence) {
  u::Xoshiro256 parent(29);
  u::Xoshiro256 child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent() == child());
  EXPECT_LT(same, 3);
}

// --------------------------------------------------------------- Stats ----

TEST(RunningStats, EmptyIsZero) {
  u::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  u::RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  u::Xoshiro256 rng(31);
  u::RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, CvZeroMean) {
  u::RunningStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_EQ(s.cv(), 0.0);  // mean is zero -> defined as 0
}

TEST(Histogram, BucketsAndQuantiles) {
  u::Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket(b), 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.6);
}

TEST(Histogram, OverflowUnderflowCounted) {
  u::Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(u::Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(u::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LinearRegression, ExactLine) {
  u::LinearRegression reg;
  for (int i = 0; i < 50; ++i) {
    reg.add(i, 3.0 * i + 7.0);
  }
  const u::LinearFit fit = reg.fit();
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearRegression, NoisyLineRecoversSlope) {
  u::Xoshiro256 rng(37);
  u::LinearRegression reg;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0, 100);
    reg.add(x, 2.5 * x + 1.0 + rng.normal(0, 5.0));
  }
  const u::LinearFit fit = reg.fit();
  EXPECT_NEAR(fit.slope, 2.5, 0.05);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(LinearRegression, DegenerateInputs) {
  u::LinearRegression reg;
  EXPECT_EQ(reg.fit().n, 0u);
  reg.add(1.0, 2.0);
  EXPECT_EQ(reg.fit().slope, 0.0);  // single point -> zero fit
  reg.add(1.0, 4.0);                // identical x values
  EXPECT_EQ(reg.fit().slope, 0.0);
}

TEST(ExactQuantile, Median) {
  EXPECT_DOUBLE_EQ(u::exact_quantile({3, 1, 2}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(u::exact_quantile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(u::exact_quantile({5}, 0.99), 5.0);
  EXPECT_THROW(u::exact_quantile({}, 0.5), std::invalid_argument);
}

// --------------------------------------------------------------- Bytes ----

TEST(Bytes, RoundTripScalars) {
  u::ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-12345);
  w.i64(-9876543210LL);
  w.f64(3.14159265358979);
  w.f32(2.5f);

  u::ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_EQ(r.i64(), -9876543210LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159265358979);
  EXPECT_FLOAT_EQ(r.f32(), 2.5f);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, RoundTripStringsAndBlobs) {
  u::ByteWriter w;
  w.str("hello, \xF0\x9F\x8C\x8D");
  const std::vector<std::uint8_t> blob = {1, 2, 3, 0, 255};
  w.blob(blob);
  w.str("");

  u::ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "hello, \xF0\x9F\x8C\x8D");
  EXPECT_EQ(r.blob(), blob);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncatedInputThrows) {
  u::ByteWriter w;
  w.u32(7);
  {
    u::ByteReader r(std::span(w.bytes().data(), 2));
    EXPECT_THROW(r.u32(), std::out_of_range);
  }
  u::ByteWriter w2;
  w2.u32(100);  // blob length prefix promising 100 bytes, none present
  u::ByteReader r2(w2.bytes());
  EXPECT_THROW(r2.blob(), std::out_of_range);
}

TEST(Bytes, LittleEndianLayout) {
  u::ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

// ---------------------------------------------------------------- JSON ----

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(u::Json::parse("null").is_null());
  EXPECT_EQ(u::Json::parse("true").as_bool(), true);
  EXPECT_EQ(u::Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(u::Json::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(u::Json::parse("\"abc\"").as_string(), "abc");
}

TEST(Json, ParseNested) {
  const auto v = u::Json::parse(R"({"a": [1, 2, {"b": "x"}], "c": null})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[2].at("b").as_string(), "x");
  EXPECT_TRUE(v.at("c").is_null());
  EXPECT_TRUE(v.at("missing").is_null());
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("zz"));
}

TEST(Json, EscapesRoundTrip) {
  u::Json v(std::string("line1\nline2\t\"quoted\"\\"));
  const auto reparsed = u::Json::parse(v.dump());
  EXPECT_EQ(reparsed.as_string(), v.as_string());
}

TEST(Json, UnicodeEscape) {
  EXPECT_EQ(u::Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(u::Json::parse(R"("é")").as_string(), "\xC3\xA9");
}

TEST(Json, DumpParseRoundTripComplex) {
  u::Json v;
  v["name"] = "ricsa";
  v["version"] = 1.0;
  v["flags"] = u::JsonArray{u::Json(true), u::Json(false), u::Json(nullptr)};
  v["nested"] = u::JsonObject{{"k", u::Json(3.5)}};
  const auto round = u::Json::parse(v.dump());
  EXPECT_EQ(round, v);
  const auto pretty = u::Json::parse(v.dump(2));
  EXPECT_EQ(pretty, v);
}

TEST(Json, MalformedInputsThrow) {
  EXPECT_THROW(u::Json::parse(""), std::runtime_error);
  EXPECT_THROW(u::Json::parse("{"), std::runtime_error);
  EXPECT_THROW(u::Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(u::Json::parse("nul"), std::runtime_error);
  EXPECT_THROW(u::Json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(u::Json::parse("1 2"), std::runtime_error);
}

TEST(Json, IntegerFormatting) {
  EXPECT_EQ(u::Json(42).dump(), "42");
  EXPECT_EQ(u::Json(-3).dump(), "-3");
  EXPECT_EQ(u::Json(2.5).dump(), "2.5");
}

// -------------------------------------------------------------- Base64 ----

TEST(Base64, KnownVectors) {
  const auto enc = [](std::string_view s) {
    return u::base64_encode(std::span(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  };
  EXPECT_EQ(enc(""), "");
  EXPECT_EQ(enc("f"), "Zg==");
  EXPECT_EQ(enc("fo"), "Zm8=");
  EXPECT_EQ(enc("foo"), "Zm9v");
  EXPECT_EQ(enc("foobar"), "Zm9vYmFy");
}

TEST(Base64, RoundTripRandom) {
  u::Xoshiro256 rng(41);
  for (int len = 0; len < 64; ++len) {
    std::vector<std::uint8_t> data(static_cast<std::size_t>(len));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng() & 0xFF);
    EXPECT_EQ(u::base64_decode(u::base64_encode(data)), data);
  }
}

TEST(Base64, RejectsBadInput) {
  EXPECT_THROW(u::base64_decode("abc"), std::invalid_argument);
  EXPECT_THROW(u::base64_decode("ab!="), std::invalid_argument);
  EXPECT_THROW(u::base64_decode("=abc"), std::invalid_argument);
  EXPECT_THROW(u::base64_decode("a=bc"), std::invalid_argument);
}

// ------------------------------------------------------------- Strings ----

TEST(Strings, Split) {
  const auto parts = u::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(u::split("", ',').size(), 1u);
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(u::trim("  x y \t\n"), "x y");
  EXPECT_EQ(u::trim(""), "");
  EXPECT_EQ(u::to_lower("AbC"), "abc");
  EXPECT_TRUE(u::iequals("Content-Type", "content-type"));
  EXPECT_FALSE(u::iequals("a", "ab"));
  EXPECT_TRUE(u::starts_with("GET /x", "GET "));
  EXPECT_FALSE(u::starts_with("GE", "GET "));
}

TEST(Strings, Format) {
  EXPECT_EQ(u::format_bytes(16e6), "16.0 MB");
  EXPECT_EQ(u::format_seconds(0.0123), "12.300 ms");
  EXPECT_EQ(u::strprintf("%d-%s", 5, "x"), "5-x");
}

// ---------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, RunsAllTasks) {
  u::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  u::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  u::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionsPropagate) {
  u::ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, SizeReflectsWorkers) {
  u::ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, ParallelForPropagatesChunkException) {
  u::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 0) throw std::runtime_error("chunk boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForWaitsForAllChunksBeforeRethrowing) {
  // The caller may destroy the body (and everything it references) the
  // moment parallel_for throws — so no chunk can still be running then.
  u::ThreadPool pool(4);
  std::atomic<int> started{0}, finished{0};
  try {
    pool.parallel_for(0, 4, [&](std::size_t lo, std::size_t) {
      ++started;
      if (lo == 0) throw std::runtime_error("first chunk dies");
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      ++finished;
    });
    FAIL() << "expected the chunk exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first chunk dies");
  }
  // Every chunk that started also ran to completion (or threw) by the time
  // parallel_for returned; nothing is still touching the captures.
  EXPECT_EQ(finished.load(), started.load() - 1);
}

TEST(ThreadPool, ParallelForFirstExceptionWinsWhenSeveralThrow) {
  u::ThreadPool pool(4);
  try {
    pool.parallel_for(0, 4, [](std::size_t lo, std::size_t) {
      throw std::runtime_error("chunk " + std::to_string(lo));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 0");  // chunks submit in order
  }
}
