// Core optimizer tests: the Eq. 9/10 dynamic program against hand-computed
// optima, exhaustive-search ground truth on random instances (parameterized
// property sweep), feasibility constraints, Eq. 2 delay prediction, and
// adaptive reconfiguration.
#include <gtest/gtest.h>

#include <cmath>

#include "core/mapper.hpp"
#include "core/reconfigure.hpp"
#include "cost/network_profile.hpp"
#include "netsim/testbed.hpp"
#include "util/prng.hpp"

namespace core = ricsa::core;
namespace c = ricsa::cost;
namespace ns = ricsa::netsim;

namespace {

/// Three-node line: A --1MB/s--> B(fast) --1MB/s--> C, plus a thin direct
/// A --0.1MB/s--> C shortcut. Hand-checkable.
c::NetworkProfile line_profile() {
  c::NetworkProfile p;
  p.add_node("A", 1.0, false);
  p.add_node("B", 4.0, true);
  p.add_node("C", 1.0, true);
  p.set_link(0, 1, {1e6, 0.0});
  p.set_link(1, 2, {1e6, 0.0});
  p.set_link(0, 2, {1e5, 0.0});
  return p;
}

/// source -> work(8 s at unit power) -> display; m0 = 8 MB, m1 = 1 MB.
core::MappingProblem line_problem() {
  core::MappingProblem problem;
  problem.unit_compute = {0.0, 8.0, 0.0};
  problem.messages = {8000000, 1000000};
  problem.allowed = {
      {true, false, false},  // source pinned at A
      {true, true, true},    // work anywhere
      {false, false, true},  // display pinned at C
  };
  problem.source = 0;
  problem.destination = 2;
  return problem;
}

}  // namespace

TEST(DpMapper, HandComputedOptimum) {
  // work at A: 8 + 1e6/1e5 = 18 s; at B: 8 + 2 + 1 = 11 s; at C: 80 + 8 = 88.
  const auto profile = line_profile();
  const auto problem = line_problem();
  const auto mapping = core::DpMapper().solve(profile, problem);
  ASSERT_TRUE(mapping.feasible);
  EXPECT_NEAR(mapping.delay_s, 11.0, 1e-9);
  EXPECT_EQ(mapping.node_of_module, (std::vector<int>{0, 1, 2}));
}

TEST(DpMapper, AssignmentDelayMatchesPrediction) {
  const auto profile = line_profile();
  const auto problem = line_problem();
  const auto mapping = core::DpMapper().solve(profile, problem);
  EXPECT_NEAR(core::predict_delay(profile, problem, mapping.node_of_module),
              mapping.delay_s, 1e-12);
}

TEST(DpMapper, PrefersLocalComputeWhenLinksAreThin) {
  auto profile = line_profile();
  // Make both B-routes useless: thin A->B.
  profile.set_link(0, 1, {1e4, 0.0});
  const auto problem = line_problem();
  const auto mapping = core::DpMapper().solve(profile, problem);
  ASSERT_TRUE(mapping.feasible);
  // Now work at A then ship 1 MB over the shortcut: 8 + 10 = 18 s.
  EXPECT_NEAR(mapping.delay_s, 18.0, 1e-9);
  EXPECT_EQ(mapping.node_of_module, (std::vector<int>{0, 0, 2}));
}

TEST(DpMapper, GpuConstraintForcesPlacement) {
  auto problem = line_problem();
  // Require the work module to sit on a GPU node (B or C only).
  problem.allowed[1] = {false, true, true};
  const auto mapping = core::DpMapper().solve(line_profile(), problem);
  ASSERT_TRUE(mapping.feasible);
  EXPECT_NE(mapping.node_of_module[1], 0);
  EXPECT_NEAR(mapping.delay_s, 11.0, 1e-9);  // B still optimal
}

TEST(DpMapper, InfeasibleWhenNoRouteExists) {
  c::NetworkProfile p;
  p.add_node("A", 1.0, false);
  p.add_node("B", 1.0, false);  // no edges at all
  core::MappingProblem problem;
  problem.unit_compute = {0.0, 1.0};
  problem.messages = {1000};
  problem.allowed = {{true, false}, {false, true}};
  problem.source = 0;
  problem.destination = 1;
  const auto mapping = core::DpMapper().solve(p, problem);
  EXPECT_FALSE(mapping.feasible);
  EXPECT_TRUE(std::isinf(mapping.delay_s));
}

TEST(DpMapper, ClientServerReductionQ2) {
  // Only the direct link exists: the system reduces to the simplest
  // client/server setup (paper: "When the number of groups q = 2").
  c::NetworkProfile p;
  p.add_node("S", 1.0, false);
  p.add_node("C", 2.0, true);
  p.set_link(0, 1, {1e6, 0.01});
  core::MappingProblem problem;
  problem.unit_compute = {0.0, 4.0, 0.0};
  problem.messages = {2000000, 100};
  problem.allowed = {{true, false}, {true, true}, {false, true}};
  problem.source = 0;
  problem.destination = 1;
  const auto mapping = core::DpMapper().solve(p, problem);
  ASSERT_TRUE(mapping.feasible);
  // Work at S: 4 + (100/1e6 + 0.01) ~ 4.01; work at C: 2 + 0.01 + 2 = 4.01?
  // transfer m0 first: 2 s + 0.01 + compute 4/2 = 2 -> 4.01. Tie-ish; both
  // valid. Just verify the DP's arithmetic agrees with the evaluator.
  EXPECT_NEAR(core::predict_delay(p, problem, mapping.node_of_module),
              mapping.delay_s, 1e-12);
  const auto vrt = mapping.to_vrt(1);
  EXPECT_EQ(vrt.path().size(), 2u);
}

TEST(DpMapper, RevisitingNodesAllowed) {
  // Send data out to a fast worker and back: path C -> B -> C revisits C.
  c::NetworkProfile p;
  p.add_node("C", 1.0, true);
  p.add_node("B", 100.0, true);
  p.set_link(0, 1, {1e7, 0.0});
  p.set_link(1, 0, {1e7, 0.0});
  core::MappingProblem problem;
  problem.unit_compute = {0.0, 50.0, 0.0};
  problem.messages = {10000000, 10000000};
  problem.allowed = {{true, false}, {true, true}, {true, false}};
  problem.source = 0;
  problem.destination = 0;
  const auto mapping = core::DpMapper().solve(p, problem);
  ASSERT_TRUE(mapping.feasible);
  // Local: 50 s. Round trip: 1 + 0.5 + 1 = 2.5 s.
  EXPECT_NEAR(mapping.delay_s, 2.5, 1e-9);
  EXPECT_EQ(mapping.node_of_module, (std::vector<int>{0, 1, 0}));
}

// --------------------------------------------- DP == exhaustive property ----

class DpVsExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(DpVsExhaustive, AgreeOnRandomInstances) {
  ricsa::util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const int nodes = static_cast<int>(rng.uniform_int(4, 7));
  const int modules = static_cast<int>(rng.uniform_int(3, 6));

  c::NetworkProfile profile;
  for (int v = 0; v < nodes; ++v) {
    profile.add_node("n" + std::to_string(v), rng.uniform(0.5, 8.0),
                     rng.bernoulli(0.6));
  }
  // Random sparse digraph, guaranteed chain 0 -> 1 -> ... so a path exists.
  for (int v = 0; v + 1 < nodes; ++v) {
    profile.set_link(v, v + 1, {rng.uniform(1e5, 1e7), rng.uniform(0, 0.05)});
  }
  for (int a = 0; a < nodes; ++a) {
    for (int b = 0; b < nodes; ++b) {
      if (a != b && rng.bernoulli(0.35) && !profile.has_link(a, b)) {
        profile.set_link(a, b, {rng.uniform(1e5, 1e7), rng.uniform(0, 0.05)});
      }
    }
  }

  core::MappingProblem problem;
  problem.source = 0;
  problem.destination = nodes - 1;
  problem.unit_compute.push_back(0.0);
  problem.messages.clear();
  for (int m = 1; m < modules; ++m) {
    problem.unit_compute.push_back(rng.uniform(0.0, 20.0));
    problem.messages.push_back(
        static_cast<std::size_t>(rng.uniform(1e4, 5e7)));
  }
  problem.messages.pop_back();  // messages = modules - 1
  problem.messages.push_back(static_cast<std::size_t>(rng.uniform(1e4, 1e6)));
  problem.messages.resize(static_cast<std::size_t>(modules - 1));
  problem.allowed.assign(static_cast<std::size_t>(modules),
                         std::vector<bool>(static_cast<std::size_t>(nodes)));
  for (int m = 0; m < modules; ++m) {
    for (int v = 0; v < nodes; ++v) {
      bool ok = rng.bernoulli(0.8);
      if (m == 0) ok = (v == problem.source);
      if (m == modules - 1) ok = (v == problem.destination);
      problem.allowed[static_cast<std::size_t>(m)][static_cast<std::size_t>(v)] = ok;
    }
  }
  // Keep intermediate modules feasible somewhere.
  for (int m = 1; m + 1 < modules; ++m) {
    problem.allowed[static_cast<std::size_t>(m)][static_cast<std::size_t>(
        problem.destination)] = true;
  }

  const auto dp = core::DpMapper().solve(profile, problem);
  const auto ex = core::ExhaustiveMapper().solve(profile, problem);
  ASSERT_EQ(dp.feasible, ex.feasible) << "seed " << GetParam();
  if (dp.feasible) {
    EXPECT_NEAR(dp.delay_s, ex.delay_s, 1e-9 * std::max(1.0, ex.delay_s))
        << "seed " << GetParam();
    EXPECT_NEAR(core::predict_delay(profile, problem, dp.node_of_module),
                dp.delay_s, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DpVsExhaustive,
                         ::testing::Range(1, 25));

// ----------------------------------------------------------- Testbed DP ----

TEST(DpMapper, TestbedPicksGaTechUtOrnlForLargeData) {
  // The headline result: on the six-site testbed with a heavy isosurface
  // pipeline from GaTech, the optimal data path is GaTech -> UT -> ORNL.
  const ns::Testbed tb = ns::make_testbed();
  const auto profile = c::NetworkProfile::from_network(*tb.net);

  core::MappingProblem problem;
  problem.source = tb.gatech;
  problem.destination = tb.ornl;
  // source -> filter -> extract -> render -> display, 108 MB raw.
  problem.unit_compute = {0.0, 1.0, 60.0, 20.0, 0.05};
  problem.messages = {108000000, 108000000, 20000000, 1048576};
  const int nodes = profile.node_count();
  problem.allowed.assign(5, std::vector<bool>(static_cast<std::size_t>(nodes), true));
  for (int v = 0; v < nodes; ++v) {
    problem.allowed[0][static_cast<std::size_t>(v)] = (v == tb.gatech);
    problem.allowed[4][static_cast<std::size_t>(v)] = (v == tb.ornl);
    problem.allowed[3][static_cast<std::size_t>(v)] = profile.has_gpu(v);
  }

  const auto mapping = core::DpMapper().solve(profile, problem);
  ASSERT_TRUE(mapping.feasible);
  const auto path = mapping.to_vrt().path();
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), tb.gatech);
  EXPECT_EQ(path.back(), tb.ornl);
  // The cluster hop through UT must appear (it owns the heavy modules).
  bool via_ut = false;
  for (const int node : path) via_ut |= (node == tb.ut);
  EXPECT_TRUE(via_ut) << mapping.to_vrt().to_string();
}

// -------------------------------------------------------- Reconfigurator ----

TEST(Reconfigurator, AdoptsInitialMapping) {
  core::Reconfigurator reconf(line_problem());
  const auto outcome = reconf.update(line_profile());
  EXPECT_TRUE(outcome.changed);
  EXPECT_EQ(reconf.version(), 1u);
  EXPECT_TRUE(outcome.mapping.feasible);
}

TEST(Reconfigurator, ReroutesWhenPreferredLinkDegrades) {
  core::Reconfigurator reconf(line_problem());
  auto profile = line_profile();
  reconf.update(profile);
  const auto before = reconf.current().node_of_module;
  EXPECT_EQ(before[1], 1);  // via B

  // Collapse the A->B link to dial-up: B route now terrible.
  profile.set_link(0, 1, {1e3, 0.0});
  const auto outcome = reconf.update(profile);
  EXPECT_TRUE(outcome.changed);
  EXPECT_NE(reconf.current().node_of_module[1], 1);
  EXPECT_EQ(reconf.version(), 2u);
  // The stale assignment would have been much slower.
  EXPECT_GT(outcome.stale_delay_s, reconf.current().delay_s);
}

TEST(Reconfigurator, IgnoresNoiseBelowThreshold) {
  core::Reconfigurator reconf(line_problem(), 0.05);
  auto profile = line_profile();
  reconf.update(profile);
  // 1% wobble on a non-critical link: no re-route, version stable.
  profile.set_link(0, 2, {1.01e5, 0.0});
  const auto outcome = reconf.update(profile);
  EXPECT_FALSE(outcome.changed);
  EXPECT_EQ(reconf.version(), 1u);
}
