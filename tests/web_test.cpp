// Web layer tests: HTTP server/client mechanics, routing, and the Ajax front
// end driven by an emulated browser (long-poll partial updates, steering
// POSTs, multi-client access).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <thread>

#include "util/base64.hpp"
#include "util/json.hpp"
#include "web/frontend.hpp"
#include "web/http.hpp"

namespace w = ricsa::web;
namespace u = ricsa::util;

// ----------------------------------------------------------- HttpServer ----

TEST(Http, RoutesAndStatusCodes) {
  w::HttpServer server;
  server.route("GET", "/hello", [](const w::HttpRequest&) {
    return w::HttpResponse::text("hi");
  });
  server.route("POST", "/echo", [](const w::HttpRequest& r) {
    return w::HttpResponse::json(r.body);
  });
  server.route("GET", "/static/", [](const w::HttpRequest& r) {
    return w::HttpResponse::text("prefix:" + r.path);
  }, /*prefix=*/true);
  const int port = server.start();
  ASSERT_GT(port, 0);

  const auto hello = w::http_get(port, "/hello");
  EXPECT_EQ(hello.status, 200);
  EXPECT_EQ(hello.body, "hi");

  const auto echo = w::http_post(port, "/echo", "{\"a\":1}");
  EXPECT_EQ(echo.status, 200);
  EXPECT_EQ(echo.body, "{\"a\":1}");
  EXPECT_EQ(echo.headers.at("content-type"), "application/json");

  const auto pre = w::http_get(port, "/static/deep/file.txt");
  EXPECT_EQ(pre.body, "prefix:/static/deep/file.txt");

  const auto missing = w::http_get(port, "/nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_GE(server.requests_served(), 4u);
  server.stop();
}

TEST(Http, QueryParamsAndUrlDecoding) {
  w::HttpServer server;
  server.route("GET", "/q", [](const w::HttpRequest& r) {
    return w::HttpResponse::text(r.query_param("name", "?") + "|" +
                                 r.query_param("missing", "fallback"));
  });
  const int port = server.start();
  const auto response = w::http_get(port, "/q?name=hello%20world&x=1");
  EXPECT_EQ(response.body, "hello world|fallback");
  EXPECT_EQ(w::url_decode("a%2Fb+c"), "a/b c");
  server.stop();
}

TEST(Http, QueryParamValuelessAndEncodedKeys) {
  w::HttpRequest r;
  // Valueless keys are present with the empty value. The old parser's
  // eq==npos arithmetic made "?foo" invisible to query_param("foo") while
  // "?foo&bar=1" could surface a key as its own value.
  r.query = "foo&bar=1&full";
  EXPECT_EQ(r.query_param("foo", "fallback"), "");
  EXPECT_EQ(r.query_param("full", "0"), "");
  EXPECT_EQ(r.query_param("bar"), "1");
  // Keys are URL-decoded before comparison: %66ull names "full".
  r.query = "%66ull=1&a%20b=2";
  EXPECT_EQ(r.query_param("full", "0"), "1");
  EXPECT_EQ(r.query_param("a b"), "2");
  // '+' decodes to a space in keys exactly as in values.
  r.query = "a+b=c+d";
  EXPECT_EQ(r.query_param("a b"), "c d");
  // Empty pairs (leading/doubled/trailing '&') are skipped, never matched
  // as the empty key.
  r.query = "&&x=3&";
  EXPECT_EQ(r.query_param("x"), "3");
  EXPECT_EQ(r.query_param("", "fallback"), "fallback");
}

TEST(Http, HandlerExceptionBecomes500) {
  w::HttpServer server;
  server.route("GET", "/boom", [](const w::HttpRequest&) -> w::HttpResponse {
    throw std::runtime_error("kaput");
  });
  const int port = server.start();
  const auto response = w::http_get(port, "/boom");
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(response.body.find("kaput"), std::string::npos);
  server.stop();
}

TEST(Http, ConcurrentClients) {
  w::HttpServer server;
  std::atomic<int> hits{0};
  server.route("GET", "/inc", [&hits](const w::HttpRequest&) {
    ++hits;
    return w::HttpResponse::text("ok");
  });
  const int port = server.start();
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([port] {
      for (int k = 0; k < 5; ++k) {
        EXPECT_EQ(w::http_get(port, "/inc").status, 200);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(hits.load(), 40);
  server.stop();
}

TEST(Http, HeadReturnsHeadersWithoutBody) {
  w::HttpServer server;
  server.route("GET", "/hello", [](const w::HttpRequest&) {
    return w::HttpResponse::text("hi");
  });
  const int port = server.start();
  // HEAD falls back to the GET route: same status and Content-Length, no
  // body bytes. Raw socket because a body-aware client would block waiting
  // for the advertised-but-absent payload.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request =
      "HEAD /hello HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_TRUE(w::detail::write_all(fd, request.data(), request.size()));
  std::string wire;
  char chunk[4096];
  ssize_t got;
  while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    wire.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
  EXPECT_NE(wire.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2"), std::string::npos);
  // The response ends at the blank line: headers only, no "hi".
  EXPECT_EQ(wire.substr(wire.size() - 4), "\r\n\r\n");
  EXPECT_EQ(wire.find("hi\r\n"), std::string::npos);
  server.stop();
}

TEST(Http, WrongMethodIs405WithAllowAndUnknownMethodIs405) {
  w::HttpServer server;
  server.route("GET", "/hello", [](const w::HttpRequest&) {
    return w::HttpResponse::text("hi");
  });
  server.route("POST", "/steer", [](const w::HttpRequest&) {
    return w::HttpResponse::text("ok");
  });
  const int port = server.start();

  // Known path, wrong method: 405 with the permitted methods advertised.
  const auto wrong = w::http_post(port, "/hello", "{}");
  EXPECT_EQ(wrong.status, 405);
  ASSERT_TRUE(wrong.headers.count("allow"));
  EXPECT_NE(wrong.headers.at("allow").find("GET"), std::string::npos);
  EXPECT_NE(wrong.headers.at("allow").find("HEAD"), std::string::npos);

  // A method HTTP has never heard of is a method problem (405), not a
  // missing page (404).
  w::HttpClient client(port);
  const auto brew = client.exchange(
      "BREW /coffee HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n", 5.0,
      false);
  EXPECT_EQ(brew.status, 405);

  // Known methods on unknown paths keep their 404.
  EXPECT_EQ(w::http_get(port, "/nope").status, 404);
  server.stop();
}

TEST(Http, PostBodyRoundTrip) {
  w::HttpServer server;
  server.route("POST", "/len", [](const w::HttpRequest& r) {
    return w::HttpResponse::text(std::to_string(r.body.size()));
  });
  const int port = server.start();
  const std::string big(100000, 'x');
  const auto response = w::http_post(port, "/len", big, "text/plain");
  EXPECT_EQ(response.body, "100000");
  server.stop();
}

// --------------------------------------------------------- AjaxFrontEnd ----

namespace {
w::FrontEndConfig small_frontend() {
  w::FrontEndConfig config;
  config.session.simulation = ricsa::hydro::HydroSimulation::Kind::kSod;
  config.session.resolution = 32;
  config.session.viz.image_width = 32;
  config.session.viz.image_height = 32;
  config.session.viz.isovalue = 0.5f;
  config.frame_interval_s = 0.02;
  return config;
}
}  // namespace

TEST(AjaxFrontEnd, ServesDashboardAndState) {
  w::AjaxFrontEnd fe(small_frontend());
  const int port = fe.start();

  const auto index = w::http_get(port, "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("XMLHttpRequest"), std::string::npos);
  EXPECT_NE(index.body.find("RICSA"), std::string::npos);

  // Wait for at least one frame, then /api/state carries monitoring data.
  while (fe.frame_seq() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto state = w::http_get(port, "/api/state");
  const auto parsed = u::Json::parse(state.body);
  EXPECT_GE(parsed.at("seq").as_int(), 1);
  EXPECT_GE(parsed.at("state").at("cycle").as_int(), 1);
  EXPECT_TRUE(parsed.at("state").at("parameters").contains("gamma"));
  EXPECT_NE(parsed.at("state").at("vrt").as_string().find("node"),
            std::string::npos);
  fe.stop();
}

TEST(AjaxFrontEnd, LongPollDeliversPartialUpdate) {
  w::AjaxFrontEnd fe(small_frontend());
  const int port = fe.start();
  // Poll from zero: should return as soon as the first frame publishes,
  // carrying a PNG payload (the XHR object exchange).
  const auto poll = w::http_get(port, "/api/poll?since=0&timeout=10");
  const auto parsed = u::Json::parse(poll.body);
  ASSERT_GE(parsed.at("seq").as_int(), 1);
  ASSERT_TRUE(parsed.contains("image_b64"));
  const auto png = u::base64_decode(parsed.at("image_b64").as_string());
  ASSERT_GT(png.size(), 8u);
  EXPECT_EQ(png[1], 'P');  // PNG signature
  EXPECT_EQ(png[2], 'N');

  // A cursor far ahead of the head (stale client from a previous server
  // epoch) is resynced with the next published frame instead of parking
  // against a seq that will never arrive.
  const auto cur = static_cast<std::uint64_t>(parsed.at("seq").as_int());
  const auto poll2 =
      w::http_get(port, "/api/poll?since=" + std::to_string(cur + 1000) +
                            "&timeout=2");
  const auto parsed2 = u::Json::parse(poll2.body);
  EXPECT_FALSE(parsed2.contains("timeout"));
  ASSERT_GE(parsed2.at("seq").as_int(), 1);
  EXPECT_LT(parsed2.at("seq").as_number(), static_cast<double>(cur + 1000));
  EXPECT_TRUE(parsed2.contains("image_b64"));
  fe.stop();
}

TEST(AjaxFrontEnd, SteeringPostReachesSimulation) {
  w::AjaxFrontEnd fe(small_frontend());
  const int port = fe.start();
  while (fe.frame_seq() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));

  const auto response = w::http_post(port, "/api/steer", "{\"gamma\": 1.72}");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(fe.steer_count(), 1u);

  // Within a few frames, the state must report the steered gamma.
  double gamma = 0;
  for (int attempt = 0; attempt < 100; ++attempt) {
    const auto state = u::Json::parse(w::http_get(port, "/api/state").body);
    gamma = state.at("state").at("parameters").at("gamma").as_number();
    if (std::abs(gamma - 1.72) < 1e-9) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NEAR(gamma, 1.72, 1e-9);
  fe.stop();
}

TEST(AjaxFrontEnd, ViewChangeSwitchesVariable) {
  w::AjaxFrontEnd fe(small_frontend());
  const int port = fe.start();
  while (fe.frame_seq() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  w::http_post(port, "/api/view", "{\"variable\":\"pressure\",\"zoom\":1.5}");
  std::string variable;
  for (int attempt = 0; attempt < 100; ++attempt) {
    const auto state = u::Json::parse(w::http_get(port, "/api/state").body);
    variable = state.at("state").at("variable").as_string();
    if (variable == "pressure") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(variable, "pressure");
  fe.stop();
}

TEST(AjaxFrontEnd, MultipleConcurrentBrowsers) {
  // "can be accessed by multiple remote users using web browsers".
  w::AjaxFrontEnd fe(small_frontend());
  const int port = fe.start();
  std::atomic<int> ok{0};
  std::vector<std::thread> browsers;
  for (int b = 0; b < 4; ++b) {
    browsers.emplace_back([port, &ok] {
      const auto poll = w::http_get(port, "/api/poll?since=0&timeout=10");
      const auto parsed = u::Json::parse(poll.body);
      if (parsed.at("seq").as_int() >= 1 && parsed.contains("image_b64")) ++ok;
    });
  }
  for (auto& b : browsers) b.join();
  EXPECT_EQ(ok.load(), 4);
  fe.stop();
}

TEST(AjaxFrontEnd, RejectsMalformedSteeringBody) {
  w::AjaxFrontEnd fe(small_frontend());
  const int port = fe.start();
  EXPECT_EQ(w::http_post(port, "/api/steer", "{not json").status, 400);
  EXPECT_EQ(w::http_post(port, "/api/steer", "[1,2]").status, 400);
  EXPECT_EQ(fe.steer_count(), 0u);
  fe.stop();
}

TEST(AjaxFrontEnd, ImageEndpointServesPng) {
  w::AjaxFrontEnd fe(small_frontend());
  const int port = fe.start();
  while (fe.frame_seq() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto image = w::http_get(port, "/api/image");
  EXPECT_EQ(image.status, 200);
  EXPECT_EQ(image.headers.at("content-type"), "image/png");
  ASSERT_GT(image.body.size(), 8u);
  EXPECT_EQ(static_cast<unsigned char>(image.body[0]), 0x89);
  fe.stop();
}

TEST(AjaxFrontEnd, ImageRangeRequestsServePartialContent) {
  w::AjaxFrontEnd fe(small_frontend());
  const int port = fe.start();
  while (fe.frame_seq() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto full = w::http_get(port, "/api/image");
  ASSERT_EQ(full.status, 200);
  EXPECT_EQ(full.headers.at("accept-ranges"), "bytes");
  const std::size_t total = full.body.size();
  const std::string total_str = std::to_string(total);
  ASSERT_GT(total, 16u);

  w::HttpClient client(port);
  const auto ranged = [&](const std::string& spec) {
    return client.exchange("GET /api/image HTTP/1.1\r\nHost: x\r\nRange: " +
                               spec + "\r\n\r\n",
                           10.0, true);
  };

  // An explicit a-b window.
  const auto head4 = ranged("bytes=0-3");
  EXPECT_EQ(head4.status, 206);
  EXPECT_EQ(head4.body, full.body.substr(0, 4));
  EXPECT_EQ(head4.headers.at("content-range"), "bytes 0-3/" + total_str);
  EXPECT_EQ(static_cast<unsigned char>(head4.body[0]), 0x89);  // PNG magic

  // Open-ended a- reaches the final byte.
  const auto tail = ranged("bytes=" + std::to_string(total - 5) + "-");
  EXPECT_EQ(tail.status, 206);
  EXPECT_EQ(tail.body, full.body.substr(total - 5));
  EXPECT_EQ(tail.headers.at("content-range"),
            "bytes " + std::to_string(total - 5) + "-" +
                std::to_string(total - 1) + "/" + total_str);

  // Suffix form -N: the last N bytes.
  const auto suffix = ranged("bytes=-6");
  EXPECT_EQ(suffix.status, 206);
  EXPECT_EQ(suffix.body, full.body.substr(total - 6));

  // A last-byte position past the end clamps (RFC 7233: satisfiable).
  const auto clamped = ranged("bytes=4-" + std::to_string(total + 100));
  EXPECT_EQ(clamped.status, 206);
  EXPECT_EQ(clamped.body, full.body.substr(4));

  // First byte at/after the end: 416 with the star form.
  const auto beyond = ranged("bytes=" + total_str + "-");
  EXPECT_EQ(beyond.status, 416);
  EXPECT_EQ(beyond.headers.at("content-range"), "bytes */" + total_str);

  // Malformed and multi-range specs are ignored — full 200, not an error.
  EXPECT_EQ(ranged("bytes=abc").status, 200);
  const auto multi = ranged("bytes=0-1,4-5");
  EXPECT_EQ(multi.status, 200);
  EXPECT_EQ(multi.body.size(), total);
  fe.stop();
}
