// Hydrodynamics tests: exact Riemann solver invariants, Sod shock tube vs
// the exact solution, conservation properties, boundary conditions, the
// bowshock/Sedov setups, and the Steerable adapter.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hydro/euler.hpp"
#include "hydro/riemann_exact.hpp"
#include "hydro/setups.hpp"
#include "hydro/steerable.hpp"

namespace h = ricsa::hydro;

// --------------------------------------------------------- ExactRiemann ----

TEST(ExactRiemann, SodStarState) {
  // Canonical star-region values for Sod's problem (Toro, Table 4.2):
  // p* = 0.30313, u* = 0.92745.
  const auto star = h::solve_riemann(h::sod_left(), h::sod_right(), 1.4);
  EXPECT_NEAR(star.p_star, 0.30313, 2e-4);
  EXPECT_NEAR(star.u_star, 0.92745, 2e-4);
  EXPECT_LT(star.iterations, 50);
}

TEST(ExactRiemann, SymmetricProblemHasZeroContactVelocity) {
  const h::PrimitiveState L{1.0, 0.0, 1.0};
  const h::PrimitiveState R{1.0, 0.0, 1.0};
  const auto star = h::solve_riemann(L, R, 1.4);
  EXPECT_NEAR(star.u_star, 0.0, 1e-12);
  EXPECT_NEAR(star.p_star, 1.0, 1e-10);
}

TEST(ExactRiemann, TwoShockCollision) {
  // Colliding streams create two shocks: p* far above both inputs.
  const h::PrimitiveState L{1.0, 2.0, 1.0};
  const h::PrimitiveState R{1.0, -2.0, 1.0};
  const auto star = h::solve_riemann(L, R, 1.4);
  EXPECT_GT(star.p_star, 4.0);
  EXPECT_NEAR(star.u_star, 0.0, 1e-10);
}

TEST(ExactRiemann, VacuumDetection) {
  // Strongly receding streams -> vacuum; solver must refuse.
  const h::PrimitiveState L{1.0, -10.0, 0.01};
  const h::PrimitiveState R{1.0, 10.0, 0.01};
  EXPECT_THROW(h::solve_riemann(L, R, 1.4), std::runtime_error);
}

TEST(ExactRiemann, SampleRecoversEndStates) {
  const auto star = h::solve_riemann(h::sod_left(), h::sod_right(), 1.4);
  const auto far_left =
      h::sample_riemann(h::sod_left(), h::sod_right(), 1.4, star, -100.0);
  EXPECT_NEAR(far_left.rho, 1.0, 1e-12);
  const auto far_right =
      h::sample_riemann(h::sod_left(), h::sod_right(), 1.4, star, 100.0);
  EXPECT_NEAR(far_right.rho, 0.125, 1e-12);
}

TEST(ExactRiemann, SodProfileMonotoneDensitySegments) {
  std::vector<double> rho(200);
  h::sod_exact_profile(0.2, 0.5, 200, 1.4, rho.data(), nullptr, nullptr);
  EXPECT_NEAR(rho.front(), 1.0, 1e-9);
  EXPECT_NEAR(rho.back(), 0.125, 1e-9);
  // Density decreases monotonically from left state to the shocked state.
  for (std::size_t i = 1; i < rho.size(); ++i) {
    EXPECT_LE(rho[i], rho[i - 1] + 0.2);  // only the shock jumps up-steam side
  }
}

// ------------------------------------------------------------ EulerSod ----

TEST(EulerSolver, SodMatchesExactSolution) {
  h::SodOptions opt;
  opt.nx = 400;
  auto solver = h::make_sod(opt);
  while (solver->time() < 0.2) solver->step();

  std::vector<double> rho_exact(400), u_exact(400), p_exact(400);
  h::sod_exact_profile(solver->time(), 0.5, 400, 1.4, rho_exact.data(),
                       u_exact.data(), p_exact.data());

  double l1 = 0;
  for (int i = 0; i < 400; ++i) {
    l1 += std::abs(solver->primitive(i, 0, 0).rho - rho_exact[i]);
  }
  l1 /= 400.0;
  // MUSCL-HLLC at N=400 should sit well under 1% mean absolute error.
  EXPECT_LT(l1, 0.01);

  // Spot-check the plateau values.
  const auto star = h::solve_riemann(h::sod_left(), h::sod_right(), 1.4);
  const auto mid = solver->primitive(260, 0, 0);  // contact/star region
  EXPECT_NEAR(mid.p, star.p_star, 0.02);
  EXPECT_NEAR(mid.u, star.u_star, 0.03);
}

TEST(EulerSolver, SodConservesMassWithClosedEnds) {
  h::SodOptions opt;
  opt.nx = 100;
  auto solver = h::make_sod(opt);
  solver->config().boundaries = {h::Boundary::kReflect, h::Boundary::kReflect,
                                 h::Boundary::kOutflow, h::Boundary::kOutflow,
                                 h::Boundary::kOutflow, h::Boundary::kOutflow};
  const double m0 = solver->total_mass();
  const double e0 = solver->total_energy();
  for (int i = 0; i < 50; ++i) solver->step();
  EXPECT_NEAR(solver->total_mass(), m0, 1e-10 * m0);
  EXPECT_NEAR(solver->total_energy(), e0, 1e-10 * e0);
}

TEST(EulerSolver, UniformStateIsSteady) {
  h::EulerConfig config;
  h::EulerSolver3D solver(8, 8, 8, config);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i)
        solver.set_primitive(i, j, k, {1.0, 0, 0, 0, 1.0});
  for (int s = 0; s < 5; ++s) solver.step();
  for (int k = 0; k < 8; ++k) {
    for (int j = 0; j < 8; ++j) {
      for (int i = 0; i < 8; ++i) {
        const auto p = solver.primitive(i, j, k);
        EXPECT_NEAR(p.rho, 1.0, 1e-12);
        EXPECT_NEAR(p.u, 0.0, 1e-12);
        EXPECT_NEAR(p.p, 1.0, 1e-12);
      }
    }
  }
}

TEST(EulerSolver, PeriodicAdvectionReturns) {
  // Advect a density bump around a periodic x domain; after one period the
  // bump returns (diffused but centred at the start).
  h::EulerConfig config;
  config.gamma = 1.4;
  config.dx = 1.0 / 64;
  config.cfl = 0.4;
  config.boundaries = {h::Boundary::kPeriodic, h::Boundary::kPeriodic,
                       h::Boundary::kOutflow, h::Boundary::kOutflow,
                       h::Boundary::kOutflow, h::Boundary::kOutflow};
  h::EulerSolver3D solver(64, 1, 1, config);
  const double u0 = 1.0;
  for (int i = 0; i < 64; ++i) {
    const double x = (i + 0.5) / 64.0;
    const double bump = 1.0 + 0.2 * std::exp(-200.0 * (x - 0.3) * (x - 0.3));
    solver.set_primitive(i, 0, 0, {bump, u0, 0, 0, 1.0});
  }
  const double m0 = solver.total_mass();
  while (solver.time() < 1.0) solver.step();  // one flow-through period
  EXPECT_NEAR(solver.total_mass(), m0, 1e-10 * m0);
  // The densest cell should again be near x = 0.3 (within a few cells).
  int argmax = 0;
  double best = 0;
  for (int i = 0; i < 64; ++i) {
    if (solver.primitive(i, 0, 0).rho > best) {
      best = solver.primitive(i, 0, 0).rho;
      argmax = i;
    }
  }
  const double x_peak = (argmax + 0.5) / 64.0;
  EXPECT_NEAR(x_peak, 0.3, 0.12);
}

TEST(EulerSolver, ReflectingWallStopsFlow) {
  h::EulerConfig config;
  config.dx = 1.0 / 32;
  config.boundaries = {h::Boundary::kReflect, h::Boundary::kReflect,
                       h::Boundary::kOutflow, h::Boundary::kOutflow,
                       h::Boundary::kOutflow, h::Boundary::kOutflow};
  h::EulerSolver3D solver(32, 1, 1, config);
  for (int i = 0; i < 32; ++i) solver.set_primitive(i, 0, 0, {1, 0.5, 0, 0, 1});
  const double m0 = solver.total_mass();
  for (int s = 0; s < 40; ++s) solver.step();
  EXPECT_NEAR(solver.total_mass(), m0, 1e-9 * m0);  // nothing leaks out
}

TEST(EulerSolver, DtPositiveAndCflScaled) {
  auto solver = h::make_sod();
  const double dt1 = solver->compute_dt();
  EXPECT_GT(dt1, 0.0);
  solver->config().cfl *= 0.5;
  EXPECT_NEAR(solver->compute_dt(), 0.5 * dt1, 1e-12);
}

TEST(EulerSolver, SnapshotFieldsConsistent) {
  auto solver = h::make_sod();
  const auto rho = solver->snapshot(h::Field::kDensity);
  const auto p = solver->snapshot(h::Field::kPressure);
  EXPECT_EQ(rho.nx(), solver->nx());
  EXPECT_FLOAT_EQ(rho.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(rho.at(solver->nx() - 1, 0, 0), 0.125f);
  EXPECT_FLOAT_EQ(p.at(0, 0, 0), 1.0f);
  EXPECT_EQ(rho.variable(), "density");
}

TEST(EulerSolver, RejectsBadDimensions) {
  EXPECT_THROW(h::EulerSolver3D(0, 4, 4), std::invalid_argument);
}

// -------------------------------------------------------------- Bowshock ----

TEST(Bowshock, FormsCompressionUpstreamOfObstacle) {
  h::BowshockOptions opt;
  opt.n = 32;
  opt.mach = 2.5;
  auto solver = h::make_bowshock(opt);
  for (int s = 0; s < 120; ++s) solver->step();
  // Sample along the stagnation line upstream of the source (source centre
  // at x = 0.55 n = 17.6, radius 0.12 n = 3.8; the bow shock stands a short
  // standoff distance upstream of x ~ 14): between inflow and source there
  // must be a density jump above ambient.
  const int j = 16, k = 16;
  double max_rho = 0;
  for (int i = 2; i < 14; ++i) {
    max_rho = std::max(max_rho, solver->primitive(i, j, k).rho);
  }
  EXPECT_GT(max_rho, 1.5) << "bow shock compression must exceed ambient";
  // Far corner stays near ambient.
  EXPECT_NEAR(solver->primitive(2, 2, 2).rho, 1.0, 0.5);
}

TEST(Bowshock, SourceRegionMaintained) {
  h::BowshockOptions opt;
  opt.n = 24;
  auto solver = h::make_bowshock(opt);
  for (int s = 0; s < 10; ++s) solver->step();
  // Center of the source ball keeps its steered density.
  const int cx = static_cast<int>(0.55 * 24), c = 12;
  EXPECT_NEAR(solver->primitive(cx, c, c).rho, opt.source_density, 1e-9);
}

// ----------------------------------------------------------------- Sedov ----

TEST(Sedov, BlastWaveExpandsSpherically) {
  h::SedovOptions opt;
  opt.n = 32;
  auto solver = h::make_sedov(opt);
  for (int s = 0; s < 25; ++s) solver->step();
  const int c = 16;
  // Shell: density peak at some radius away from center.
  double center_rho = solver->primitive(c, c, c).rho;
  double max_rho = 0;
  int argmax_r = 0;
  for (int i = 0; i < 16; ++i) {
    const double rho = solver->primitive(c + i, c, c).rho;
    if (rho > max_rho) {
      max_rho = rho;
      argmax_r = i;
    }
  }
  EXPECT_GT(argmax_r, 1);          // shell has detached from the center
  EXPECT_GT(max_rho, center_rho);  // evacuated interior
  // Spherical symmetry: +x and +y profiles agree to within the grid
  // anisotropy of the dimensionally-split scheme (largest near the shell).
  for (int i = 0; i < 14; ++i) {
    EXPECT_NEAR(solver->primitive(c + i, c, c).rho,
                solver->primitive(c, c + i, c).rho, 0.25);
  }
}

// -------------------------------------------------------------- Steerable ----

TEST(Steerable, HydroSimulationBasics) {
  h::HydroSimulation sim(h::HydroSimulation::Kind::kSod, 64);
  EXPECT_EQ(sim.name(), "sod_shock_tube");
  EXPECT_EQ(sim.cycle(), 0);
  sim.advance(3);
  EXPECT_EQ(sim.cycle(), 3);
  EXPECT_GT(sim.time(), 0.0);
  const auto vars = sim.variables();
  EXPECT_EQ(vars.size(), 4u);
  const auto rho = sim.snapshot("density");
  EXPECT_EQ(rho.nx(), 64);
  EXPECT_THROW(sim.snapshot("entropy"), std::invalid_argument);
}

TEST(Steerable, ParameterSteering) {
  h::HydroSimulation sim(h::HydroSimulation::Kind::kSod, 32);
  auto params = sim.parameters();
  EXPECT_NEAR(params.at("gamma"), 1.4, 1e-12);
  EXPECT_TRUE(sim.set_parameter("gamma", 1.67));
  EXPECT_NEAR(sim.parameters().at("gamma"), 1.67, 1e-12);
  EXPECT_FALSE(sim.set_parameter("gamma", 0.5));   // rejected: unphysical
  EXPECT_FALSE(sim.set_parameter("nonsense", 1.0));
  EXPECT_TRUE(sim.set_parameter("cfl", 0.3));
}

TEST(Steerable, BowshockSteeringChangesSource) {
  h::HydroSimulation sim(h::HydroSimulation::Kind::kBowshock, 20);
  EXPECT_TRUE(sim.set_parameter("source_density", 25.0));
  sim.advance(2);
  // After steering, the maintained source uses the new density.
  const auto rho = sim.snapshot("density");
  const int cx = static_cast<int>(0.55 * 20);
  EXPECT_NEAR(rho.at(cx, 10, 10), 25.0f, 1e-3f);
}

TEST(Steerable, SteeringMidRunChangesEvolution) {
  // The whole point of steering (Section 1): changing a parameter mid-run
  // must actually alter the computation's trajectory.
  h::HydroSimulation a(h::HydroSimulation::Kind::kSod, 64);
  h::HydroSimulation b(h::HydroSimulation::Kind::kSod, 64);
  a.advance(5);
  b.advance(5);
  EXPECT_TRUE(b.set_parameter("gamma", 1.8));
  a.advance(10);
  b.advance(10);
  const auto rho_a = a.snapshot("density");
  const auto rho_b = b.snapshot("density");
  double diff = 0;
  for (int i = 0; i < 64; ++i) {
    diff += std::abs(rho_a.at(i, 0, 0) - rho_b.at(i, 0, 0));
  }
  EXPECT_GT(diff, 0.01);
}
