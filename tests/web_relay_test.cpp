// Relay fan-out subsystem tests: the pre-encoded hub publish path, the
// render-skip registry query, end-to-end frame forwarding through a relay
// node (seq rebasing, delta continuity, the never-decodes counters),
// resync through an upstream restart, serving-side escalation latching,
// topology guards (cycle and depth-cap aborts), the long-poll transport
// fallback, and the hardened HttpClient retry schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "relay/relay.hpp"
#include "relay/subscriber.hpp"
#include "util/json.hpp"
#include "viz/image.hpp"
#include "web/frontend.hpp"
#include "web/http.hpp"
#include "web/registry.hpp"

namespace w = ricsa::web;
namespace r = ricsa::relay;
using ricsa::util::Json;

namespace {

/// First top-level `"seq":` digit run in a compact poll body.
std::uint64_t body_seq(const std::string& body) {
  const std::size_t pos = body.find("\"seq\":");
  if (pos == std::string::npos) return 0;
  return std::strtoull(body.c_str() + pos + 6, nullptr, 10);
}

std::uint64_t body_base_seq(const std::string& body) {
  const std::size_t pos = body.find("\"base_seq\":");
  if (pos == std::string::npos) return 0;
  return std::strtoull(body.c_str() + pos + 11, nullptr, 10);
}

bool body_is_full(const std::string& body) {
  return body.find("\"delta\":false") != std::string::npos;
}

w::FrontEndConfig small_origin() {
  w::FrontEndConfig config;
  config.session.resolution = 16;
  config.session.cycles_per_frame = 1;
  config.session.viz.image_width = 32;
  config.session.viz.image_height = 32;
  config.frame_interval_s = 0.03;
  config.tile_size = 16;
  return config;
}

r::RelayNodeConfig small_relay(int upstream_port,
                               const std::string& id = "relay-under-test") {
  r::RelayNodeConfig config;
  config.subscriber.upstream_port = upstream_port;
  config.subscriber.views = {"main"};
  config.subscriber.relay_id = id;
  config.subscriber.backoff_initial_s = 0.02;
  config.subscriber.backoff_max_s = 0.25;
  config.poll_timeout_s = 5.0;
  return config;
}

void wait_for_relay_head(r::RelayNode& relay, std::uint64_t seq,
                         int budget_ms = 5000) {
  const auto hub = relay.registry().find("main");
  ASSERT_NE(hub, nullptr);
  for (int i = 0; i < budget_ms / 10 && hub->seq() < seq; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(hub->seq(), seq);
}

}  // namespace

// ----------------------------------------------- pre-encoded publishes ----

TEST(PublishEncoded, RoundTripsBodiesWithoutTouchingAnEncoder) {
  w::FrameHub::Config config;
  config.window = 8;
  config.workers = 1;
  w::FrameHub hub(config);

  w::FrameHub::PreEncoded full;
  full.full_body = "{\"delta\":false,\"seq\":1,\"x\":\"full-one\"}";
  EXPECT_EQ(hub.publish_encoded(std::move(full)), 1u);

  w::FrameHub::PreEncoded delta;
  delta.delta_body = "{\"base_seq\":1,\"delta\":true,\"seq\":2,\"x\":\"d\"}";
  EXPECT_EQ(hub.publish_encoded(std::move(delta)), 2u);

  const w::FramePtr first = hub.next_after(0);
  ASSERT_NE(first, nullptr);
  ASSERT_EQ(first->seq, 1u);
  EXPECT_EQ(first->body(w::Tier::kFull, false),
            "{\"delta\":false,\"seq\":1,\"x\":\"full-one\"}");
  // A full-only pre-encoded frame has no delta body.
  EXPECT_EQ(first->body(w::Tier::kFull, true), "");
  const w::FramePtr second = hub.next_after(1);
  ASSERT_NE(second, nullptr);
  ASSERT_EQ(second->seq, 2u);
  EXPECT_EQ(second->body(w::Tier::kFull, true),
            "{\"base_seq\":1,\"delta\":true,\"seq\":2,\"x\":\"d\"}");
  EXPECT_EQ(second->body(w::Tier::kFull, false), "");

  const w::FrameHub::Stats stats = hub.stats();
  EXPECT_EQ(stats.published, 2u);
  EXPECT_EQ(stats.preencoded_publishes, 2u);
  EXPECT_EQ(stats.image_encodes, 0u);
  hub.shutdown();
}

TEST(PublishEncoded, RegistryPathDeclaresViewsAndSkipsDecimation) {
  w::HubRegistry::Config config;
  config.hub.window = 8;
  config.hub.workers = 1;
  config.idle_reap_s = 0.0;
  // Aggressive decimation that publish_encoded must bypass: the relayed
  // body is already rebased, every frame must land.
  config.idle_publish_divisor = 8;
  config.idle_publish_after_s = 0.0;
  w::HubRegistry registry(config);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    w::FrameHub::PreEncoded pre;
    pre.full_body = "{\"delta\":false,\"seq\":" + std::to_string(i) + "}";
    EXPECT_EQ(registry.publish_encoded("relayed", std::move(pre)), i);
  }
  EXPECT_EQ(registry.find("relayed")->seq(), 6u);
  registry.shutdown();
}

// --------------------------------------------- render-skip decimation ----

TEST(WantsPublish, MirrorsIdleDecimationCadence) {
  w::HubRegistry::Config config;
  config.hub.window = 16;
  config.hub.workers = 1;
  config.idle_reap_s = 0.0;
  config.idle_publish_divisor = 3;
  // A fresh shard's last-subscribe stamp is the steady-clock epoch, so any
  // positive horizon makes an unsubscribed view idle immediately while a
  // just-subscribed one stays at full rate.
  config.idle_publish_after_s = 5.0;
  w::HubRegistry registry(config);

  ricsa::viz::Image img(16, 16, {1, 2, 3, 255});
  // First publish is always real (the shard needs a head frame).
  EXPECT_TRUE(registry.wants_publish("v"));
  EXPECT_EQ(registry.publish("v", Json(), img, false), 1u);
  // Idle view at divisor 3: of every 3 offered frames, 2 are declined
  // before the render and the third goes through — the same 1-in-N cadence
  // hub_for_publish enforces when the render cannot be skipped.
  int rendered = 0;
  for (int i = 0; i < 9; ++i) {
    if (!registry.wants_publish("v")) continue;
    ++rendered;
    registry.publish("v", Json(), img, false);
  }
  EXPECT_EQ(rendered, 3);
  EXPECT_EQ(registry.find("v")->seq(), 4u);
  // Subscriber activity resumes the full rate immediately.
  registry.subscribe("v");
  EXPECT_TRUE(registry.wants_publish("v"));
  registry.shutdown();
}

// ------------------------------------------------- end-to-end forward ----

TEST(RelayNode, ForwardsFramesWithLocalSeqsAndNeverDecodes) {
  w::AjaxFrontEnd origin(small_origin());
  const int origin_port = origin.start();
  r::RelayNode relay(small_relay(origin_port));
  relay.start();
  wait_for_relay_head(relay, 3);

  // Downstream joins the relay exactly as it would the origin.
  const auto state = w::http_get(relay.port(), "/api/state");
  EXPECT_EQ(state.status, 200);
  std::uint64_t since = body_seq(state.body);
  EXPECT_GE(since, 3u);

  // Sequential polls ride rebased deltas: strictly +1 local seqs, each
  // delta anchored on the previous local frame.
  int full_bodies = 0;
  for (int i = 0; i < 5; ++i) {
    const auto poll = w::http_get(
        relay.port(),
        "/api/poll?since=" + std::to_string(since) + "&delta=1&timeout=5");
    ASSERT_EQ(poll.status, 200);
    const std::uint64_t seq = body_seq(poll.body);
    EXPECT_EQ(seq, since + 1);
    if (body_is_full(poll.body)) {
      ++full_bodies;
    } else if (poll.body.find("\"base_seq\":") != std::string::npos) {
      // Sequential deltas are anchored implicitly (base = seq - 1) and
      // omit base_seq; when present it must name the client's cursor.
      EXPECT_EQ(body_base_seq(poll.body), since);
    }
    since = seq;
  }
  // Steady state is all deltas (the join frame was the only full).
  EXPECT_EQ(full_bodies, 0);

  // The never-decodes proof: every relay publish was pre-encoded and the
  // relay never touched a PNG/base64 encoder.
  const auto hub = relay.registry().find("main");
  const w::FrameHub::Stats stats = hub->stats();
  EXPECT_EQ(stats.image_encodes, 0u);
  EXPECT_EQ(stats.preencoded_publishes, stats.published);
  EXPECT_GT(stats.published, 0u);

  // Relay identity in /api/stats, X-Relay-Path on responses.
  const auto st = w::http_get(relay.port(), "/api/stats");
  EXPECT_EQ(st.status, 200);
  EXPECT_NE(st.body.find("\"relay\""), std::string::npos);
  EXPECT_NE(st.body.find("relay-under-test"), std::string::npos);
  ASSERT_TRUE(st.headers.count("x-relay-path"));
  EXPECT_EQ(st.headers.at("x-relay-path"), "relay-under-test");

  // The subscriber negotiated the SSE stream (transport auto).
  const auto sub_stats = relay.subscriber().stats();
  ASSERT_EQ(sub_stats.size(), 1u);
  EXPECT_TRUE(sub_stats[0].second.sse);
  EXPECT_FALSE(sub_stats[0].second.failed);

  relay.stop();
  origin.stop();
}

TEST(RelayNode, LongPollTransportForwardsToo) {
  w::AjaxFrontEnd origin(small_origin());
  const int origin_port = origin.start();
  r::RelayNodeConfig config = small_relay(origin_port, "poll-relay");
  config.subscriber.transport = "poll";
  config.subscriber.poll_timeout_s = 1.0;
  r::RelayNode relay(config);
  relay.start();
  wait_for_relay_head(relay, 3);

  const auto state = w::http_get(relay.port(), "/api/state");
  const std::uint64_t since = body_seq(state.body);
  const auto poll = w::http_get(
      relay.port(),
      "/api/poll?since=" + std::to_string(since) + "&delta=1&timeout=5");
  ASSERT_EQ(poll.status, 200);
  EXPECT_EQ(body_seq(poll.body), since + 1);

  const auto sub_stats = relay.subscriber().stats();
  ASSERT_EQ(sub_stats.size(), 1u);
  EXPECT_FALSE(sub_stats[0].second.sse);
  EXPECT_GT(sub_stats[0].second.frames, 0u);

  relay.stop();
  origin.stop();
}

// ------------------------------------------------ restart resync path ----

TEST(RelayNode, UpstreamRestartPropagatesAsCleanResync) {
  auto origin = std::make_unique<w::AjaxFrontEnd>(small_origin());
  const int origin_port = origin->start();
  r::RelayNode relay(small_relay(origin_port, "restart-relay"));
  relay.start();
  wait_for_relay_head(relay, 3);

  std::uint64_t since = body_seq(w::http_get(relay.port(), "/api/state").body);
  ASSERT_GT(since, 0u);

  // Kill the origin mid-stream. The relay's upstream connection breaks and
  // its reconnect loop starts spinning against a dead port.
  origin->stop();
  origin.reset();

  // Restart the origin on the same port (listen_loopback sets
  // SO_REUSEADDR), with a fresh seq space starting at 1 — an epoch change
  // the relay must absorb.
  w::FrontEndConfig again = small_origin();
  again.port = origin_port;
  origin = std::make_unique<w::AjaxFrontEnd>(again);
  ASSERT_EQ(origin->start(), origin_port);

  // Downstream keeps polling its local cursor and must see: strictly
  // increasing local seqs, a full-frame resync (never a misanchored
  // delta), and then flowing frames — zero gaps, zero errors.
  bool saw_full_resync = false;
  int frames_after_restart = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (frames_after_restart < 5 &&
         std::chrono::steady_clock::now() < deadline) {
    const auto poll = w::http_get(
        relay.port(),
        "/api/poll?since=" + std::to_string(since) + "&delta=1&timeout=2");
    ASSERT_EQ(poll.status, 200);
    if (poll.body.find("\"timeout\":true") != std::string::npos) continue;
    const std::uint64_t seq = body_seq(poll.body);
    ASSERT_GT(seq, since);
    if (body_is_full(poll.body)) {
      saw_full_resync = true;
    } else if (poll.body.find("\"base_seq\":") != std::string::npos) {
      // A cursor-anchored delta must name the previous local frame;
      // sequential deltas omit base_seq (anchored implicitly at seq - 1).
      EXPECT_EQ(body_base_seq(poll.body), since);
    }
    if (saw_full_resync) ++frames_after_restart;
    since = seq;
  }
  EXPECT_TRUE(saw_full_resync);
  EXPECT_GE(frames_after_restart, 5);

  // The subscriber recorded the outage as reconnects and a resync-worthy
  // event, and still never decoded a frame.
  const auto hub = relay.registry().find("main");
  const w::FrameHub::Stats stats = hub->stats();
  EXPECT_EQ(stats.image_encodes, 0u);
  EXPECT_EQ(stats.preencoded_publishes, stats.published);
  const auto sub_stats = relay.subscriber().stats();
  EXPECT_GT(sub_stats[0].second.reconnects, 0u);
  EXPECT_FALSE(sub_stats[0].second.failed);

  relay.stop();
  origin->stop();
}

// ---------------------------------------------- escalation is latched ----

TEST(RelayNode, FullFrameEscalationServesSnapshotsAndLatches) {
  w::AjaxFrontEnd origin(small_origin());
  const int origin_port = origin.start();
  r::RelayNode relay(small_relay(origin_port, "escalate-relay"));
  relay.start();
  wait_for_relay_head(relay, 4);

  const std::uint64_t head =
      body_seq(w::http_get(relay.port(), "/api/state").body);
  ASSERT_GT(head, 1u);
  const std::uint64_t resyncs_before =
      relay.subscriber().stats()[0].second.resyncs;

  // Several clients demand a full snapshot at once. The relay head is a
  // delta-only frame (steady state), so the relay must escalate upstream —
  // once, thanks to the latch — and every client must still get a full
  // body before its deadline.
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::atomic<int> full_served{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const auto poll = w::http_get(
          relay.port(), "/api/poll?since=" + std::to_string(head - 1) +
                            "&full=1&timeout=5");
      if (poll.status == 200 && body_is_full(poll.body) &&
          body_seq(poll.body) >= head) {
        ++full_served;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(full_served.load(), kClients);

  // The latch kept the upstream escalation count below the client count:
  // the four concurrent demands collapse into one resync (a straggler
  // arriving after the first resync completed may add another).
  const std::uint64_t escalations =
      relay.subscriber().stats()[0].second.resyncs - resyncs_before;
  EXPECT_GE(escalations, 1u);
  EXPECT_LE(escalations, 3u);

  relay.stop();
  origin.stop();
}

// ------------------------------------------------- topology guards ----

TEST(RelayNode, SelfSubscriptionIsRejectedAsACycle) {
  // A relay pointed at itself: its own X-Relay-Path id comes straight
  // back, the server side answers 409 at the join, and the subscriber
  // aborts permanently instead of building a forwarding loop. The
  // self-loop needs the port known up front (subscriber config is
  // captured at construction), so reserve an ephemeral port by binding
  // and closing a listener, then bind the relay to it explicitly.
  const int port = [] {
    auto probe = ricsa::net::Socket::listen_loopback(0);
    return probe.local_port();
  }();
  r::RelayNodeConfig self = small_relay(port, "ouroboros");
  self.port = port;
  r::RelayNode node(self);
  ASSERT_EQ(node.start(), port);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!node.subscriber().any_failed() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(node.subscriber().any_failed());
  const auto stats = node.subscriber().stats();
  EXPECT_TRUE(stats[0].second.failed);
  EXPECT_FALSE(stats[0].second.failure.empty());
  node.stop();
}

TEST(RelayNode, DepthCapAbortsTheSubscription) {
  w::AjaxFrontEnd origin(small_origin());
  const int origin_port = origin.start();
  r::RelayNode tier1(small_relay(origin_port, "tier-1"));
  tier1.start();
  wait_for_relay_head(tier1, 2);

  // tier-2 would be the second relay hop; with max_depth 1 its own
  // presence already exceeds the cap once it sees tier-1 in the response
  // chain.
  r::RelayNodeConfig config = small_relay(tier1.port(), "tier-2");
  config.subscriber.max_depth = 1;
  r::RelayNode tier2(config);
  tier2.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!tier2.subscriber().any_failed() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(tier2.subscriber().any_failed());
  const auto stats = tier2.subscriber().stats();
  EXPECT_NE(stats[0].second.failure.find("depth"), std::string::npos);

  // A deep-enough cap chains fine: tier-3 at the default depth cap serves
  // frames three hops from the origin.
  r::RelayNodeConfig ok = small_relay(tier1.port(), "tier-2-ok");
  r::RelayNode tier2ok(ok);
  tier2ok.start();
  {
    const auto hub = tier2ok.registry().find("main");
    ASSERT_NE(hub, nullptr);
    for (int i = 0; i < 500 && hub->seq() < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(hub->seq(), 2u);
  }
  // The learned chain names the upstream relay, depth included in stats.
  const auto chain = tier2ok.subscriber().upstream_path();
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0], "tier-1");

  tier2ok.stop();
  tier2.stop();
  tier1.stop();
  origin.stop();
}

// ----------------------------------------------- HttpClient hardening ----

TEST(HttpClientRetry, RetriesBareFiveOhThreesWithCappedBackoff) {
  w::HttpServer server;
  std::atomic<int> hits{0};
  server.route("GET", "/flaky", [&](const w::HttpRequest&) {
    // Two bare 503s (no Retry-After), then success: the retry schedule
    // must carry the caller across without help from the server.
    if (++hits <= 2) return w::HttpResponse::text("busy", 503);
    return w::HttpResponse::text("ok");
  });
  const int port = server.start();

  w::HttpClient client(port);
  w::HttpClient::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_s = 0.01;
  policy.max_backoff_s = 0.05;
  const auto response = client.get_with_retry("/flaky", policy);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok");
  EXPECT_EQ(hits.load(), 3);

  // Attempts exhausted: the final 503 comes back instead of an exception.
  hits = -100;
  const auto still_busy = client.get_with_retry("/flaky", policy);
  EXPECT_EQ(still_busy.status, 503);
  server.stop();
}

TEST(HttpClientRetry, HttpDateRetryAfterFallsBackToSchedule) {
  w::HttpServer server;
  std::atomic<int> hits{0};
  server.route("GET", "/flaky", [&](const w::HttpRequest&) {
    // RFC 7231 allows Retry-After to be an HTTP-date (or any junk, from a
    // misbehaving server). Neither is a delay in seconds: a client that
    // runs them through strtod reads 0 off the day name (a hot retry
    // loop) and "nan" even survives std::min against the backoff cap. A
    // non-numeric header must fall back to the capped exponential
    // schedule as if it were absent.
    const int hit = ++hits;
    if (hit <= 2) {
      auto resp = w::HttpResponse::text("busy", 503);
      resp.headers["Retry-After"] =
          hit == 1 ? "Fri, 08 Aug 2026 12:00:00 GMT" : "nan";
      return resp;
    }
    return w::HttpResponse::text("ok");
  });
  const int port = server.start();

  w::HttpClient client(port);
  w::HttpClient::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_s = 0.05;
  policy.max_backoff_s = 0.1;
  const auto t0 = std::chrono::steady_clock::now();
  const auto response = client.get_with_retry("/flaky", policy);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(hits.load(), 3);
  // Both failed attempts waited out the schedule (0.05 s + 0.1 s): not the
  // zero-delay hot loop of a mis-parsed date, and nowhere near the stall a
  // nan backoff would produce.
  EXPECT_GE(elapsed_s, 0.15);
  EXPECT_LT(elapsed_s, 5.0);
  server.stop();
}

TEST(HttpClientRetry, SurfacesConnectErrorsDistinctly) {
  // A port with nothing behind it: grab an ephemeral port and close it.
  const int dead_port = [] {
    auto probe = ricsa::net::Socket::listen_loopback(0);
    return probe.local_port();
  }();
  w::HttpClient client(dead_port);
  w::HttpClient::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_s = 0.01;
  policy.max_backoff_s = 0.02;
  try {
    client.get_with_retry("/", policy, 1.0);
    FAIL() << "expected HttpError";
  } catch (const w::HttpError& e) {
    EXPECT_EQ(e.kind(), w::HttpError::Kind::kConnect);
  }
}
