// Fig. 9 reproduction: measured end-to-end delay of the six visualization
// loops on the six-site testbed, for Jet (16 MB), Rage (64 MB) and Visible
// Woman (108 MB), with the isosurface pipeline.
//
//   Loop 1  ORNL-LSU-GaTech-UT-ORNL       (RICSA optimal, DP-chosen)
//   Loop 2  ORNL-LSU-GaTech-NCState-ORNL
//   Loop 3  ORNL-LSU-OSU-NCState-ORNL
//   Loop 4  ORNL-LSU-OSU-UT-ORNL
//   Loop 5  ORNL-GaTech-ORNL              (PC-PC client/server)
//   Loop 6  ORNL-OSU-ORNL                 (PC-PC client/server)
//
// Module indices: 0 source, 1 filter, 2 isosurface, 3 render, 4 display.
// PC-PC loops extract at the data-source PC (no graphics card) and render at
// the ORNL client, exactly as Section 5.3.1 describes.
//
// Expected shape (paper): loop 1 minimal in every column; optimal-vs-PC-PC
// speedup grows with dataset size, exceeding ~3x at ~100 MB; the cluster
// loops' advantage over PC-PC is small for 16 MB.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace ricsa;
using bench::Ids;

namespace {

struct Loop {
  const char* label;
  bench::LoopOptions options;
};

std::vector<Loop> make_loops() {
  std::vector<Loop> loops;
  loops.push_back({"Loop 1: ORNL-LSU-GaTech-UT-ORNL (RICSA optimal)", {}});

  bench::LoopOptions l2;
  l2.fixed_assignment = std::vector<int>{Ids::gatech, Ids::gatech, Ids::ncstate,
                                         Ids::ncstate, Ids::ornl};
  loops.push_back({"Loop 2: ORNL-LSU-GaTech-NCState-ORNL", l2});

  bench::LoopOptions l3;
  l3.data_source = Ids::osu;
  l3.fixed_assignment =
      std::vector<int>{Ids::osu, Ids::osu, Ids::ncstate, Ids::ncstate, Ids::ornl};
  loops.push_back({"Loop 3: ORNL-LSU-OSU-NCState-ORNL", l3});

  bench::LoopOptions l4;
  l4.data_source = Ids::osu;
  l4.fixed_assignment =
      std::vector<int>{Ids::osu, Ids::osu, Ids::ut, Ids::ut, Ids::ornl};
  loops.push_back({"Loop 4: ORNL-LSU-OSU-UT-ORNL", l4});

  bench::LoopOptions l5;
  l5.fixed_assignment = std::vector<int>{Ids::gatech, Ids::gatech, Ids::gatech,
                                         Ids::ornl, Ids::ornl};
  loops.push_back({"Loop 5: ORNL-GaTech-ORNL (PC-PC)", l5});

  bench::LoopOptions l6;
  l6.data_source = Ids::osu;
  l6.fixed_assignment =
      std::vector<int>{Ids::osu, Ids::osu, Ids::osu, Ids::ornl, Ids::ornl};
  loops.push_back({"Loop 6: ORNL-OSU-ORNL (PC-PC)", l6});
  return loops;
}

void shape(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
}

}  // namespace

int main() {
  const std::vector<std::string> datasets = {"jet", "rage", "viswoman"};
  const std::vector<Loop> loops = make_loops();

  std::printf("Fig. 9 — measured end-to-end delay (virtual seconds) of six "
              "visualization loops\n");
  std::printf("isosurface pipeline; datasets: Jet 16 MB, Rage 64 MB, "
              "VisWoman 108 MB\n\n");
  std::printf("%-52s %10s %10s %14s\n", "", "Jet(16MB)", "Rage(64MB)",
              "Viswoman(108MB)");

  // delay[loop][dataset]
  std::vector<std::vector<double>> delay(loops.size(),
                                         std::vector<double>(datasets.size(), -1));
  std::vector<int> optimal_path;
  for (std::size_t l = 0; l < loops.size(); ++l) {
    std::printf("%-52s", loops[l].label);
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      const auto result = bench::run_loop(datasets[d], loops[l].options);
      delay[l][d] = result.completed ? result.data_path_s : -1.0;
      if (l == 0 && d == datasets.size() - 1) {
        optimal_path = result.vrt.path();
      }
      std::printf(" %10.2f", delay[l][d]);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nDP-selected data path for VisWoman: ");
  const char* names[] = {"ORNL", "LSU", "UT", "NCState", "OSU", "GaTech"};
  for (std::size_t i = 0; i < optimal_path.size(); ++i) {
    std::printf("%s%s", i ? "-" : "", names[optimal_path[i]]);
  }
  std::printf("\n\nShape checks vs. the paper:\n");

  bool loop1_min = true;
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    for (std::size_t l = 1; l < loops.size(); ++l) {
      if (delay[l][d] > 0 && delay[0][d] > delay[l][d]) loop1_min = false;
    }
  }
  shape(loop1_min, "loop 1 (RICSA optimal) is the minimum in every column");

  const double speedup_vis = delay[4][2] / delay[0][2];
  std::printf("  optimal vs PC-PC(GaTech) speedup at 108 MB: %.2fx\n",
              speedup_vis);
  shape(speedup_vis >= 3.0,
        ">= 3x speedup over client/server at ~100 MB (paper: 'more than "
        "three times')");

  const double speedup_jet = delay[4][0] / delay[0][0];
  std::printf("  optimal vs PC-PC(GaTech) speedup at 16 MB: %.2fx\n",
              speedup_jet);
  shape(speedup_jet < speedup_vis,
        "speedup grows with dataset size");

  // "the advantage of utilizing an intermediate MPI module is not very
  // obvious for small datasets": cluster loop 2 vs PC-PC loop 5 gap at
  // 16 MB is a small fraction of the gap at 108 MB.
  const double gap_small = delay[4][0] - delay[1][0];
  const double gap_large = delay[4][2] - delay[1][2];
  std::printf("  PC-PC minus cluster-loop delay: %+.2f s @16MB, %+.2f s @108MB\n",
              gap_small, gap_large);
  shape(gap_small < 0.35 * gap_large,
        "cluster advantage small for 16 MB, decisive for 108 MB");

  return loop1_min ? 0 : 1;
}
