// Transport stabilization (Section 3): the Robbins-Monro control channel's
// goodput must converge to the target g* and stay there with low jitter
// under random losses, where a TCP-like AIMD channel saws between overshoot
// and multiplicative backoff.
//
// Reproduces the claims RICSA imports from Rao et al. [26]: for each loss
// rate we run both controllers on the same lossy link (with cross traffic),
// print a goodput time series and the post-convergence statistics, and
// check RMSA's coefficient of variation sits well below AIMD's.
#include <cstdio>
#include <memory>
#include <vector>

#include "netsim/cross_traffic.hpp"
#include "netsim/network.hpp"
#include "transport/datagram_transport.hpp"
#include "transport/rate_controller.hpp"
#include "util/stats.hpp"

using namespace ricsa;

namespace {

struct RunResult {
  util::RunningStats post;  // goodput samples after convergence window
  std::vector<double> trace;
};

RunResult run(bool use_rmsa, double loss, double target_Bps, bool cross) {
  netsim::Simulator sim;
  netsim::Network net(sim, 0xbeef + static_cast<unsigned>(loss * 1e4));
  const auto a = net.add_node({.name = "A"});
  const auto b = net.add_node({.name = "B"});
  netsim::LinkConfig link;
  link.bandwidth_Bps = 2e6;
  link.prop_delay_s = 0.02;
  link.random_loss = loss;
  net.add_duplex(a, b, link);

  std::unique_ptr<netsim::CrossTraffic> ct;
  if (cross) {
    netsim::CrossTrafficConfig cfg;
    cfg.on_load = 0.25;
    ct = std::make_unique<netsim::CrossTraffic>(sim, net.link(a, b), cfg, 99);
    ct->start();
  }

  const int data_port = transport::allocate_port();
  const int ack_port = transport::allocate_port();
  transport::FlowConfig fc;
  transport::TransportReceiver rx(net, b, data_port, a, ack_port, fc);
  std::unique_ptr<transport::RateController> ctrl;
  if (use_rmsa) {
    transport::RmsaConfig rc;
    rc.target_Bps = target_Bps;
    ctrl = std::make_unique<transport::RmsaController>(rc);
  } else {
    transport::AimdConfig ac;
    ac.increase_Bps = 1.5e5;
    ctrl = std::make_unique<transport::AimdController>(ac);
  }
  transport::TransportSender tx(net, a, b, data_port, ack_port, fc,
                                std::move(ctrl));
  tx.start_stream();

  RunResult out;
  for (double t = 1.0; t <= 60.0; t += 0.25) {
    sim.run_until(t);
    const double g = rx.goodput(sim.now());
    out.trace.push_back(g);
    if (t >= 20.0) out.post.add(g);
  }
  tx.stop();
  if (ct) ct->stop();
  return out;
}

}  // namespace

int main() {
  const double target = 6e5;  // g* = 600 KB/s control stream
  std::printf("Transport stabilization (Section 3): goodput vs target g* = "
              "%.0f KB/s on a 2 MB/s link\n\n", target / 1e3);

  std::printf("%-10s %-8s | %12s %12s %8s | %12s %12s %8s\n", "loss", "cross",
              "RMSA mean", "RMSA sd", "RMSA cv", "AIMD mean", "AIMD sd",
              "AIMD cv");
  bool all_pass = true;
  for (const double loss : {0.001, 0.01, 0.05}) {
    for (const bool cross : {false, true}) {
      const RunResult rmsa = run(true, loss, target, cross);
      const RunResult aimd = run(false, loss, target, cross);
      const bool pass = rmsa.post.cv() < aimd.post.cv() &&
                        std::abs(rmsa.post.mean() - target) < 0.2 * target;
      all_pass &= pass;
      std::printf("%-10.3f %-8s | %12.0f %12.0f %8.3f | %12.0f %12.0f %8.3f %s\n",
                  loss, cross ? "yes" : "no", rmsa.post.mean(),
                  rmsa.post.stddev(), rmsa.post.cv(), aimd.post.mean(),
                  aimd.post.stddev(), aimd.post.cv(), pass ? "" : "  <-- FAIL");
    }
  }

  // One illustrative convergence trace.
  std::printf("\nGoodput trace (KB/s, every 2 s) at 1%% loss, no cross "
              "traffic:\n  t:     ");
  for (int i = 0; i < 24; ++i) std::printf("%6d", 1 + 2 * i);
  const RunResult rmsa = run(true, 0.01, target, false);
  const RunResult aimd = run(false, 0.01, target, false);
  std::printf("\n  RMSA: ");
  for (std::size_t i = 0; i < rmsa.trace.size() && i / 8 < 24; i += 8) {
    std::printf("%6.0f", rmsa.trace[i] / 1e3);
  }
  std::printf("\n  AIMD: ");
  for (std::size_t i = 0; i < aimd.trace.size() && i / 8 < 24; i += 8) {
    std::printf("%6.0f", aimd.trace[i] / 1e3);
  }
  std::printf("\n\n[%s] RMSA stabilizes at g* with lower jitter than AIMD at "
              "every loss rate\n", all_pass ? "PASS" : "FAIL");
  return all_pass ? 0 : 1;
}
