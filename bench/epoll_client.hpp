// Epoll-based bench *client* harness: one reactor thread drives thousands
// of long-poll clients.
//
// The thread-per-client load generator (one blocking HttpClient + one
// std::thread per emulated browser) is itself the bottleneck at 4k+
// clients on small machines: thousands of generator threads contend for
// the same cores as the server under test, and their scheduling jitter
// shows up as tail latency the report then attributes to the server. This
// harness inverts the client side exactly like src/net inverted the server
// side — every emulated browser is a little connection state machine
// (connect → join at the live head → long-poll loop) registered on one
// net::Reactor, so the whole load fleet costs one thread regardless of
// client count, and slow-client think time is a reactor timer instead of a
// sleeping thread.
//
// Accounting matches the thread-based client_loop in ajax_fanout.cpp
// field-for-field, so rounds driven by either harness are comparable.
#pragma once

#include <sys/epoll.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "util/json.hpp"

namespace benchweb {

/// Per-client tallies, shared between the thread-based and the epoll-based
/// harnesses (and summed into the round report).
struct ClientResult {
  std::vector<double> delivery_ms;  // publish stamp -> response received
  std::vector<double> rtt_ms;       // poll request -> response
  std::uint64_t frames = 0;
  std::uint64_t polls = 0;
  std::uint64_t gaps = 0;   // seq advanced by more than one (unpaced)
  std::uint64_t skips = 0;  // paced clients: frames deliberately jumped
  std::uint64_t timeouts = 0;  // empty polls; for SSE, keepalive comments
  std::uint64_t errors = 0;
  std::uint64_t bytes = 0;  // response body bytes received
  /// Raw bytes on the wire, both directions: request lines, response
  /// headers, chunk framing, SSE event framing, bodies. wire_bytes - bytes
  /// is the transport's framing overhead — the long-poll vs SSE
  /// head-to-head number the transport scenario reports per frame.
  std::uint64_t wire_bytes = 0;
  // Frame/byte counts by served quality tier (full, half, state-only).
  std::array<std::uint64_t, 3> tier_frames{};
  std::array<std::uint64_t, 3> tier_bytes{};
  // Image-delta protocol accounting (delta scenario).
  std::uint64_t tile_frames = 0;  // bodies carrying a `tiles` array
  std::uint64_t tiles_received = 0;
  std::uint64_t image_frames = 0;  // bodies carrying a full image_b64
  std::uint64_t delta_breaks = 0;  // tiles whose base_seq != composited seq
  int reconnects = 0;
  // Error breakdown (summed into `errors` by the harnesses that track it):
  // HTTP 503s (connection cap), other non-200s, JSON/protocol failures,
  // connect/IO failures.
  std::uint64_t errors_503 = 0;
  std::uint64_t errors_http = 0;
  std::uint64_t errors_parse = 0;
  std::uint64_t errors_io = 0;
};

inline std::size_t tier_index(const std::string& name) {
  if (name == "half") return 1;
  if (name == "state") return 2;
  return 0;
}

inline double bench_now_unix_ms() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::system_clock::now().time_since_epoch())
                 .count()) /
         1000.0;
}

/// The accounting fields of one poll body, extracted by token scan. The
/// fleet deliberately does NOT JSON-parse responses: after each publish,
/// hundreds of bodies land on the single loop thread back to back, and a
/// full parse per body queues the later ones long enough to show up as
/// tail latency — the exact artifact this harness exists to remove. The
/// scan relies on the server's compact dump format (`"key":value`) and on
/// the poll schema keeping these top-level keys unique (note `"seq":`
/// cannot match inside `"base_seq":` — the preceding character differs).
struct PollBodyFields {
  bool timeout = false;
  bool has_seq = false;
  std::uint64_t seq = 0;
  bool has_base_seq = false;
  std::uint64_t base_seq = 0;
  bool has_published = false;
  double published_ms = 0.0;
  bool has_tiles = false;
  std::size_t tile_count = 0;
  bool has_image = false;
  std::string tier;  // empty = absent
};

inline bool scan_number(const std::string& body, const char* token,
                        double* out) {
  const std::size_t pos = body.find(token);
  if (pos == std::string::npos) return false;
  *out = std::atof(body.c_str() + pos + std::strlen(token));
  return true;
}

inline PollBodyFields scan_poll_body(const std::string& body) {
  PollBodyFields f;
  f.timeout = body.find("\"timeout\":") != std::string::npos;
  double number = 0.0;
  if ((f.has_seq = scan_number(body, "\"seq\":", &number))) {
    f.seq = static_cast<std::uint64_t>(number);
  }
  if ((f.has_base_seq = scan_number(body, "\"base_seq\":", &number))) {
    f.base_seq = static_cast<std::uint64_t>(number);
  }
  f.has_published = scan_number(body, "\"published_ms\":", &f.published_ms);
  const std::size_t tiles_pos = body.find("\"tiles\":[");
  f.has_tiles = tiles_pos != std::string::npos;
  if (f.has_tiles) {
    std::size_t pos = tiles_pos;
    while ((pos = body.find("\"png_b64\":", pos)) != std::string::npos) {
      ++f.tile_count;
      pos += 10;
    }
  }
  f.has_image = body.find("\"image_b64\":") != std::string::npos;
  const std::size_t tier_pos = body.find("\"tier\":\"");
  if (tier_pos != std::string::npos) {
    const std::size_t start = tier_pos + 8;
    const std::size_t end = body.find('"', start);
    if (end != std::string::npos) f.tier = body.substr(start, end - start);
  }
  return f;
}

/// One emulated browser of the epoll fleet.
struct ClientSpec {
  std::string view;       // "" = the default view (no view= parameter)
  std::string client_id;  // non-empty opts into adaptive pacing
  double inter_poll_delay_s = 0.0;  // slow-consumer think time
  bool force_full = false;          // tile-delta opt-out (full=1)
  bool slow = false;                // reporting tag: excluded from the
                                    // fast-client percentiles
  /// Ride the /api/stream SSE push channel instead of the long-poll loop:
  /// one request, then an unbounded chunked event stream. Frame/tier/delta
  /// accounting is identical to the poll mode; for slow consumers the
  /// think time becomes a read-side pause (TCP backpressure) instead of a
  /// delay between polls.
  bool sse = false;
  /// Per-client server port override (0 = the fleet's port). The relay
  /// scenario spreads one fleet across several relay nodes with this.
  int port = 0;
};

/// Drives every ClientSpec against one server on a single reactor thread.
class EpollClientFleet {
 public:
  EpollClientFleet(int port, std::vector<ClientSpec> specs)
      : port_(port), specs_(std::move(specs)) {}

  /// Run the fleet for `duration_s` on the calling thread (which becomes
  /// the reactor loop). Single-shot. Returns one result per spec, in spec
  /// order.
  std::vector<ClientResult> run(double duration_s) {
    std::vector<ClientResult> results(specs_.size());
    ricsa::net::Reactor reactor;
    std::vector<std::unique_ptr<Conn>> conns;
    conns.reserve(specs_.size());
    // Setup runs as a posted task: fd registration and timers are
    // loop-thread operations, and run() drains pre-posted tasks first.
    reactor.post([&] {
      for (std::size_t i = 0; i < specs_.size(); ++i) {
        conns.push_back(
            std::make_unique<Conn>(reactor, port_, specs_[i], results[i]));
        conns.back()->start();
      }
      reactor.run_after(duration_s, [&] {
        for (auto& conn : conns) conn->finish();
        reactor.stop();
      });
    });
    reactor.run();
    return results;
  }

 private:
  /// Connection state machine: kConnect (await writability, check
  /// SO_ERROR) -> join at the live head (GET /api/state) -> long-poll loop
  /// (kRequest: flush the request; kResponse: accumulate until
  /// Content-Length bytes of body arrived; kDelay: think-time timer for
  /// slow consumers) -> kDone. Errors reconnect with the cursor preserved.
  class Conn : public ricsa::net::EventHandler {
   public:
    Conn(ricsa::net::Reactor& reactor, int port, const ClientSpec& spec,
         ClientResult& out)
        : reactor_(reactor),
          port_(spec.port > 0 ? spec.port : port),
          spec_(spec),
          out_(out) {}
    ~Conn() override { deregister(); }

    void start() {
      sock_ = ricsa::net::Socket::connect_loopback(port_);
      if (!sock_.valid()) {
        ++out_.errors;
        ++out_.errors_io;
        retry_later();
        return;
      }
      phase_ = Phase::kConnect;
      if (!reactor_.add(sock_.fd(), EPOLLOUT, this)) {
        // Watch-table exhaustion: this client simply drops out.
        ++out_.errors;
        sock_.close();
        phase_ = Phase::kDone;
      }
    }

    void finish() {
      cancel_timer();
      deregister();
      phase_ = Phase::kDone;
    }

    void on_event(std::uint32_t events) override {
      if (phase_ == Phase::kDone) return;
      if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
        reconnect();
        return;
      }
      if (phase_ == Phase::kConnect) {
        if (sock_.connect_error() != 0) {
          ++out_.errors;
          ++out_.errors_io;
          reconnect();
          return;
        }
        phase_ = Phase::kRequest;
        queue_request();
      }
      if (phase_ == Phase::kRequest && (events & EPOLLOUT) != 0) flush();
      if (phase_ == Phase::kResponse && (events & EPOLLIN) != 0) drain();
    }

   private:
    enum class Phase { kConnect, kRequest, kResponse, kDelay, kDone };

    void deregister() {
      if (sock_.valid()) {
        reactor_.remove(sock_.fd());
        sock_.close();
      }
    }

    void cancel_timer() {
      if (timer_ != 0) {
        reactor_.cancel(timer_);
        timer_ = 0;
      }
    }

    void retry_later() {
      // Connect failures and dropped connections back off briefly instead
      // of spinning the loop: an instant re-SYN against a server at its
      // connection cap (503 + half-close) would turn one transient
      // rejection into a self-sustaining storm.
      phase_ = Phase::kDelay;
      timer_ = reactor_.run_after(0.05, [this] {
        timer_ = 0;
        if (phase_ != Phase::kDone) start();
      });
    }

    void reconnect() {
      deregister();
      ++out_.reconnects;
      retry_later();
    }

    void queue_request() {
      inbuf_.clear();
      streaming_ = false;
      if (!joined_) {
        outbuf_ = "GET /api/state" +
                  (spec_.view.empty() ? std::string()
                                      : "?view=" + spec_.view) +
                  " HTTP/1.1\r\nHost: bench\r\n\r\n";
      } else {
        std::string query = "since=" + std::to_string(since_) +
                            "&delta=1&timeout=2";
        if (spec_.force_full) query += "&full=1";
        if (!spec_.client_id.empty()) query += "&client=" + spec_.client_id;
        if (!spec_.view.empty()) query += "&view=" + spec_.view;
        if (spec_.sse) {
          // One subscribe, then an unbounded event stream: `polls` counts
          // stream (re)subscriptions, which is exactly where the
          // per-frame request overhead of long-polling disappears.
          outbuf_ =
              "GET /api/stream?" + query + " HTTP/1.1\r\nHost: bench\r\n\r\n";
          streaming_ = true;
          stream_headers_done_ = false;
          event_buf_.clear();
          ++out_.polls;
        } else {
          outbuf_ =
              "GET /api/poll?" + query + " HTTP/1.1\r\nHost: bench\r\n\r\n";
        }
        t0_ms_ = bench_now_unix_ms();
      }
      outpos_ = 0;
      phase_ = Phase::kRequest;
      reactor_.modify(sock_.fd(), EPOLLOUT);
      flush();
    }

    void flush() {
      while (outpos_ < outbuf_.size()) {
        std::size_t written = 0;
        const ricsa::net::IoStatus status = sock_.write_some(
            outbuf_.data() + outpos_, outbuf_.size() - outpos_, written);
        outpos_ += written;
        out_.wire_bytes += written;
        if (status == ricsa::net::IoStatus::kWouldBlock) return;
        if (status == ricsa::net::IoStatus::kError) {
          reconnect();
          return;
        }
      }
      phase_ = Phase::kResponse;
      reactor_.modify(sock_.fd(), EPOLLIN);
    }

    void drain() {
      for (;;) {
        const std::size_t before = inbuf_.size();
        const ricsa::net::IoStatus status = sock_.read_some(inbuf_);
        if (status == ricsa::net::IoStatus::kWouldBlock) break;
        if (status != ricsa::net::IoStatus::kOk) {
          reconnect();
          return;
        }
        out_.wire_bytes += inbuf_.size() - before;
        if (streaming_) {
          if (!consume_stream()) return;  // connection torn down
          if (spec_.inter_poll_delay_s > 0.0) {
            // Slow SSE consumer: the think time becomes a read pause, so
            // unread events back up in the socket — the TCP backpressure a
            // real saturated browser applies to the push channel.
            pause_stream_reads();
            return;
          }
        } else if (try_complete_response()) {
          return;
        }
      }
      // Level-triggered read drained without a full response yet: wait.
    }

    void pause_stream_reads() {
      phase_ = Phase::kDelay;
      reactor_.modify(sock_.fd(), 0);
      timer_ = reactor_.run_after(spec_.inter_poll_delay_s, [this] {
        timer_ = 0;
        if (phase_ != Phase::kDelay) return;
        phase_ = Phase::kResponse;
        reactor_.modify(sock_.fd(), EPOLLIN);
      });
    }

    /// Consume whatever fraction of the SSE stream has arrived: response
    /// head once, then chunked-transfer envelopes, then blank-line-split
    /// events. Returns false when the connection was torn down.
    bool consume_stream() {
      if (!stream_headers_done_) {
        const std::size_t header_end = inbuf_.find("\r\n\r\n");
        if (header_end == std::string::npos) return true;
        int status = 0;
        std::size_t ignored = std::string::npos;
        parse_head(inbuf_.substr(0, header_end), &status, &ignored);
        inbuf_.erase(0, header_end + 4);
        if (status != 200) {
          ++out_.errors;
          if (status == 503) {
            ++out_.errors_503;
          } else {
            ++out_.errors_http;
          }
          reconnect();
          return false;
        }
        stream_headers_done_ = true;
      }
      for (;;) {
        const std::size_t line_end = inbuf_.find("\r\n");
        if (line_end == std::string::npos) break;
        char* end = nullptr;
        const unsigned long long size =
            std::strtoull(inbuf_.c_str(), &end, 16);
        if (end == inbuf_.c_str() || end > inbuf_.c_str() + line_end) {
          ++out_.errors;
          ++out_.errors_parse;
          reconnect();
          return false;
        }
        if (inbuf_.size() < line_end + 2 + size + 2) break;
        if (size == 0) {
          // Terminal chunk: the server ended the stream (shutdown or
          // reaped shard). Resubscribe from the preserved cursor.
          reconnect();
          return false;
        }
        event_buf_.append(inbuf_, line_end + 2, size);
        inbuf_.erase(0, line_end + 2 + size + 2);
      }
      std::size_t pos;
      while ((pos = event_buf_.find("\n\n")) != std::string::npos) {
        const std::string block = event_buf_.substr(0, pos);
        event_buf_.erase(0, pos + 2);
        handle_event(block);
      }
      return true;
    }

    void handle_event(const std::string& block) {
      if (!block.empty() && block[0] == ':') {
        // Keepalive comment: the push channel's "no frame yet", counted
        // where a long-poll's empty 200 would land.
        ++out_.timeouts;
        return;
      }
      const std::size_t data_pos = block.find("data: ");
      if (data_pos == std::string::npos) {
        ++out_.errors;
        ++out_.errors_parse;
        return;
      }
      const std::size_t data_end = block.find('\n', data_pos);
      account_frame(block.substr(data_pos + 6,
                                 data_end == std::string::npos
                                     ? std::string::npos
                                     : data_end - data_pos - 6),
                    bench_now_unix_ms());
    }

    /// True when a full response was consumed and the connection moved on
    /// (next request, delay timer, or reconnect).
    bool try_complete_response() {
      const std::size_t header_end = inbuf_.find("\r\n\r\n");
      if (header_end == std::string::npos) return false;
      int status = 0;
      std::size_t content_length = std::string::npos;
      parse_head(inbuf_.substr(0, header_end), &status, &content_length);
      if (content_length == std::string::npos) {
        // The server always sends Content-Length; anything else is a
        // protocol break — drop the connection.
        ++out_.errors;
        ++out_.errors_parse;
        reconnect();
        return true;
      }
      const std::size_t body_begin = header_end + 4;
      if (inbuf_.size() < body_begin + content_length) return false;
      const std::string body = inbuf_.substr(body_begin, content_length);
      inbuf_.erase(0, body_begin + content_length);
      if (!joined_) {
        handle_join(status, body);
      } else {
        handle_poll(status, body);
      }
      return true;
    }

    static void parse_head(const std::string& head, int* status,
                           std::size_t* content_length) {
      if (head.size() > 12 && head.compare(0, 5, "HTTP/") == 0) {
        *status = std::atoi(head.c_str() + 9);
      }
      // Lower-case scan for the one header the state machine needs.
      std::string lower(head);
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      const std::size_t pos = lower.find("content-length:");
      if (pos != std::string::npos) {
        *content_length = static_cast<std::size_t>(
            std::atoll(lower.c_str() + pos + 15));
      }
    }

    void handle_join(int status, const std::string& body) {
      joined_ = true;  // a failed join just starts polling from 0
      if (status == 200) {
        double seq = 0.0;
        if (scan_number(body, "\"seq\":", &seq)) {
          since_ = static_cast<std::uint64_t>(seq);
        }
      }
      queue_request();
    }

    void handle_poll(int status, const std::string& body) {
      const double t1 = bench_now_unix_ms();
      ++out_.polls;
      if (status != 200) {
        ++out_.errors;
        if (status == 503) {
          // Connection cap: the server half-closed after the 503, so the
          // connection is dead — reconnect with backoff instead of writing
          // the next poll into an EOF.
          ++out_.errors_503;
          reconnect();
          return;
        }
        // Other persistent non-200s (e.g. a misconfigured view's 404)
        // must not re-poll at wire speed either: throttle the retry.
        ++out_.errors_http;
        phase_ = Phase::kDelay;
        reactor_.modify(sock_.fd(), 0);
        timer_ = reactor_.run_after(0.05, [this] {
          timer_ = 0;
          if (phase_ == Phase::kDelay) queue_request();
        });
        return;
      }
      if (account_frame(body, t1)) out_.rtt_ms.push_back(t1 - t0_ms_);
      next_poll();
    }

    /// Shared accounting for one frame body, whether it arrived as a poll
    /// response or as an SSE event payload. Returns true when the body
    /// advanced the cursor (a new frame, not a timeout/stale/parse miss).
    bool account_frame(const std::string& body, double t1) {
      const PollBodyFields fields = scan_poll_body(body);
      if (fields.timeout) {
        ++out_.timeouts;
        return false;
      }
      if (!fields.has_seq) {
        ++out_.errors;
        ++out_.errors_parse;
        return false;
      }
      if (fields.seq <= since_) return false;
      // Adaptive sessions skip frames by design (latest_only pacing);
      // count those separately so `gaps` stays the hub-correctness signal.
      if (since_ != 0 && fields.seq != since_ + 1) {
        if (spec_.client_id.empty()) {
          ++out_.gaps;
        } else {
          out_.skips += fields.seq - since_ - 1;
        }
      }
      // Tile-delta protocol accounting. `since_` doubles as the composited
      // cursor: a gap-free client composites every frame, so tiles must
      // always anchor at exactly the previous frame received.
      if (fields.has_tiles) {
        ++out_.tile_frames;
        out_.tiles_received += fields.tile_count;
        if (!fields.has_base_seq || fields.base_seq != since_) {
          ++out_.delta_breaks;
        }
      } else if (fields.has_image) {
        ++out_.image_frames;
      }
      since_ = fields.seq;
      ++out_.frames;
      out_.bytes += body.size();
      const std::size_t tier =
          fields.tier.empty() ? 0 : tier_index(fields.tier);
      ++out_.tier_frames[tier];
      out_.tier_bytes[tier] += body.size();
      if (fields.has_published) {
        out_.delivery_ms.push_back(t1 - fields.published_ms);
      }
      return true;
    }

    void next_poll() {
      if (phase_ == Phase::kDone) return;
      if (spec_.inter_poll_delay_s > 0.0) {
        // Slow-consumer think time: a timer, not a sleeping thread. The fd
        // stays registered with no interest bits; the server's idle-read
        // deadline comfortably exceeds the delay.
        phase_ = Phase::kDelay;
        reactor_.modify(sock_.fd(), 0);
        timer_ = reactor_.run_after(spec_.inter_poll_delay_s, [this] {
          timer_ = 0;
          if (phase_ == Phase::kDelay) queue_request();
        });
        return;
      }
      queue_request();
    }

    ricsa::net::Reactor& reactor_;
    const int port_;
    const ClientSpec spec_;
    ClientResult& out_;
    ricsa::net::Socket sock_;
    Phase phase_ = Phase::kDone;
    bool joined_ = false;
    bool streaming_ = false;
    bool stream_headers_done_ = false;
    std::string event_buf_;  // de-chunked SSE payload awaiting "\n\n"
    std::uint64_t since_ = 0;
    std::string outbuf_;
    std::size_t outpos_ = 0;
    std::string inbuf_;
    double t0_ms_ = 0.0;
    std::uint64_t timer_ = 0;
  };

  int port_;
  std::vector<ClientSpec> specs_;
};

}  // namespace benchweb
