// Micro-benchmarks (google-benchmark) for the hot computational kernels:
// isosurface extraction, ray casting, streamline advection, the DP mapper,
// software rasterization, PNG encoding and the message codec. These are the
// raw throughput numbers behind the calibrated cost models.
#include <benchmark/benchmark.h>

#include "core/mapper.hpp"
#include "cost/network_profile.hpp"
#include "data/generators.hpp"
#include "hydro/setups.hpp"
#include "steering/message.hpp"
#include "util/prng.hpp"
#include "viz/image.hpp"
#include "viz/isosurface.hpp"
#include "viz/rasterizer.hpp"
#include "viz/raycast.hpp"
#include "viz/streamline.hpp"

using namespace ricsa;

namespace {

void BM_IsosurfaceExtract(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const data::ScalarVolume vol = data::make_rage(n, n, n);
  std::size_t cells = 0;
  for (auto _ : state) {
    const auto result = viz::extract_isosurface(vol, 0.6f);
    cells += result.stats.cells_scanned;
    benchmark::DoNotOptimize(result.mesh.triangle_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.SetLabel("cells/s");
}
BENCHMARK(BM_IsosurfaceExtract)->Arg(24)->Arg(48)->Arg(72);

void BM_RayCast(benchmark::State& state) {
  const data::ScalarVolume vol = data::make_jet(48, 48, 48);
  const auto tf = viz::TransferFunction::preset(0.0f, 1.3f);
  viz::RayCastOptions opt;
  opt.width = static_cast<int>(state.range(0));
  opt.height = opt.width;
  std::size_t samples = 0;
  for (auto _ : state) {
    const auto result = viz::raycast(vol, tf, opt);
    samples += result.samples;
    benchmark::DoNotOptimize(result.image.pixels().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
  state.SetLabel("samples/s");
}
BENCHMARK(BM_RayCast)->Arg(64)->Arg(128);

void BM_Streamline(benchmark::State& state) {
  const data::VectorVolume field = data::make_tornado(48);
  const auto seeds = viz::grid_seeds(field, 4);
  viz::StreamlineOptions opt;
  opt.max_steps = 300;
  std::size_t steps = 0;
  for (auto _ : state) {
    const auto set = viz::trace_streamlines(field, seeds, opt);
    steps += set.advection_steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.SetLabel("advections/s");
}
BENCHMARK(BM_Streamline);

void BM_RenderMesh(benchmark::State& state) {
  const data::ScalarVolume vol = data::make_sphere(49, 18.0f);
  const auto iso = viz::extract_isosurface(vol, 0.0f);
  viz::RenderOptions opt;
  opt.width = 256;
  opt.height = 256;
  std::size_t tris = 0;
  for (auto _ : state) {
    const auto result = viz::render_mesh(iso.mesh, opt);
    tris += result.triangles_drawn;
    benchmark::DoNotOptimize(result.image.pixels().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tris));
  state.SetLabel("triangles/s");
}
BENCHMARK(BM_RenderMesh);

void BM_DpSolve(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  util::Xoshiro256 rng(7);
  cost::NetworkProfile profile;
  for (int v = 0; v < nodes; ++v) {
    profile.add_node("n" + std::to_string(v), rng.uniform(0.5, 8.0), true);
  }
  for (int a = 0; a < nodes; ++a) {
    for (int b = 0; b < nodes; ++b) {
      if (a != b && rng.bernoulli(0.25)) {
        profile.set_link(a, b, {rng.uniform(1e5, 1e7), 0.01});
      }
    }
  }
  for (int v = 0; v + 1 < nodes; ++v) {
    profile.set_link(v, v + 1, {1e6, 0.01});
  }
  core::MappingProblem problem;
  problem.source = 0;
  problem.destination = nodes - 1;
  problem.unit_compute = {0.0, 5.0, 20.0, 3.0, 0.1};
  problem.messages = {100000000, 100000000, 20000000, 1048576};
  problem.allowed.assign(5, std::vector<bool>(static_cast<std::size_t>(nodes), true));
  for (int v = 0; v < nodes; ++v) {
    problem.allowed[0][static_cast<std::size_t>(v)] = (v == 0);
    problem.allowed[4][static_cast<std::size_t>(v)] = (v == nodes - 1);
  }
  for (auto _ : state) {
    const auto mapping = core::DpMapper().solve(profile, problem);
    benchmark::DoNotOptimize(mapping.delay_s);
  }
}
BENCHMARK(BM_DpSolve)->Arg(8)->Arg(32)->Arg(128);

void BM_HydroStep(benchmark::State& state) {
  auto solver = hydro::make_bowshock({.n = static_cast<int>(state.range(0))});
  for (auto _ : state) {
    solver->step();
    benchmark::DoNotOptimize(solver->time());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0) *
                          state.range(0));
  state.SetLabel("cell-updates/s");
}
BENCHMARK(BM_HydroStep)->Arg(24)->Arg(48);

void BM_PngEncode(benchmark::State& state) {
  viz::Image img(256, 256);
  util::Xoshiro256 rng(3);
  for (int y = 0; y < 256; ++y) {
    for (int x = 0; x < 256; ++x) {
      img.at(x, y) = {static_cast<std::uint8_t>(rng() & 0xFF),
                      static_cast<std::uint8_t>(rng() & 0xFF),
                      static_cast<std::uint8_t>(rng() & 0xFF), 255};
    }
  }
  for (auto _ : state) {
    const auto png = img.encode_png();
    benchmark::DoNotOptimize(png.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(img.bytes()));
}
BENCHMARK(BM_PngEncode);

void BM_MessageRoundTrip(benchmark::State& state) {
  steering::Message m = steering::make_viz_request(1, "isosurface", 0.5f, 512, 512);
  m.payload.assign(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    const auto bytes = m.serialize();
    const auto back = steering::Message::deserialize(bytes);
    benchmark::DoNotOptimize(back.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MessageRoundTrip)->Arg(1024)->Arg(1048576);

}  // namespace

BENCHMARK_MAIN();
