// Fan-out load harness for the Ajax long-poll hub.
//
// Drives N in-process HTTP clients (N up to 512 and beyond) against one
// AjaxFrontEnd, every client long-polling /api/poll?since=N&delta=1 over a
// persistent keep-alive connection — the browser behaviour of Section 5.1 at
// a scale no browser farm provides. Reports, as JSON per client count:
// publish-to-delivery latency percentiles (how stale is a frame by the time
// the slowest-served client holds it), poll round-trip percentiles, frame
// throughput, gap and timeout counts. The scaling claim of the paper
// ("any number of clients") is measured here, not asserted.
//
// The mixed scenario (--scenario mixed) runs every client count twice —
// once without client identities (baseline: every browser gets the full
// stream) and once with per-client adaptive pacing enabled — and reports
// per-tier delivery bandwidth plus the byte savings: slow consumers are
// downgraded to cheaper tiers instead of inflating total bytes sent, while
// fast-client delivery latency stays put.
//
// The fanout scenario (--scenario fanout) is the epoll-reactor scaling
// proof: thousands of concurrent long-poll clients (default 512 and 4096)
// in a mixed population — fast, slow, and adaptively paced — against one
// reactor-driven server. Besides the latency/throughput metrics it samples
// process-wide fd count, thread count, and peak RSS during the round and
// reports the configured server thread budget (reactor + worker pools +
// monitor loop), which stays constant while client count scales 8x. The
// clients are driven by the epoll fleet (bench/epoll_client.hpp): ONE
// load-generator thread, so generator scheduling jitter no longer inflates
// the tail latency attributed to the server.
//
// The shard scenario (--scenario shard) is the multi-hub sharding proof:
// the server publishes 4 views (variable x projection shards, each its own
// FrameHub), and >= 512 epoll-fleet clients split evenly across them. Each
// client count runs twice — all views prompt, then one view's clients
// turned into slow consumers — and the comparison block reports per-view
// gap/error counts plus the fast views' delivery p99 both ways: a slow
// *view* must not pace or delay the other shards, the isolation that a
// single shared hub window cannot give.
//
// The delta scenario (--scenario delta) measures tile-based dirty-rect
// image deltas on a localized-change workload — a steady isosurface under
// an orbiting view, where most of the frame (background) is static — by
// running the same client mix twice: once forcing full-frame resends
// (full=1, the pre-tile behaviour) and once accepting tile deltas
// (delta=1). The comparison reports steady-state bytes/frame both ways and
// the saved fraction.
//
// The transport scenario (--scenario transport) is the long-poll vs SSE
// head-to-head: the same frame source and the same epoll-fleet client
// count (>= 1024 by default) run twice, once long-polling /api/poll and
// once riding the /api/stream chunked push channel. Both rounds count
// every byte on the wire in both directions, so the comparison reports the
// per-frame framing overhead — request line + response headers per frame
// for long-poll, chunk + event framing for SSE — beside delivery p99,
// gap, and delta-break counts. The tiered/delta body stream itself is
// identical on both transports; only the envelope differs.
//
// The relay scenario (--scenario relay) is the fan-out-tree capacity
// proof: the same prompt long-poll fleet runs twice — every client
// directly against the origin, then spread evenly across `--relays` relay
// nodes subscribed to the origin over SSE (a depth-2 re-publish tree).
// Both rounds report what the origin pays (peak connections, bytes out)
// beside the end-client numbers (gaps, delta breaks, delivery p99); the
// comparison's headline is the origin byte/connection reduction at equal
// client counts, with the relay hubs' encode counters proving the relays
// forwarded every frame pre-encoded (image_encodes must stay zero).
//
// The congestion scenario (--scenario congestion) is the controller A/B:
// real per-client ClientSession objects (the production pacing stack) are
// driven through an emulated WAN (src/netsim/: bandwidth-limited last-mile
// links with propagation delay and on/off cross-traffic bursts) in virtual
// time, once per congestion-control law — the paper's Robbins-Monro Eq. 1
// (rmsa), the delay-gradient law (gradient), and the trendline law. The
// comparison reports tier flaps (downgrade/upgrade oscillation at the
// capacity boundary) and fast-client delivery p99 per controller: the
// delay-based laws must hold slow clients steady where utilization-only
// feedback probes and collapses, without costing prompt clients latency.
// Deterministic (virtual time, seeded PRNGs) and CI-cheap: simulated
// seconds are free.
//
// Usage: ajax_fanout [--clients 64,256,512] [--duration-s 4]
//                    [--slow-fraction 0.1] [--frame-interval-s 0.05]
//                    [--relays 4] [--controller rmsa|gradient|trendline]
//                    [--scenario plain|mixed|fanout|delta|shard|transport|
//                     multireactor|relay|congestion]
#include <dirent.h>
#include <sys/resource.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "epoll_client.hpp"
#include "netsim/cross_traffic.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "relay/relay.hpp"
#include "transport/congestion_controller.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "web/frontend.hpp"
#include "web/http.hpp"
#include "web/session.hpp"

namespace {

using benchweb::ClientResult;
using benchweb::ClientSpec;
using benchweb::EpollClientFleet;
using benchweb::bench_now_unix_ms;
using benchweb::tier_index;
using ricsa::util::Json;

/// Raise RLIMIT_NOFILE to its hard limit: a 4k-client round needs ~8k fds
/// (both ends are in this process), far above the usual 1024 soft default.
void raise_fd_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
  }
}

std::size_t count_open_fds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count > 2 ? count - 2 : 0;  // drop "." and ".."
}

/// Value of a "Key:   1234 kB"-style line in /proc/self/status, or 0.
long proc_status_value(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  long value = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      value = std::atol(line + key_len + 1);
      break;
    }
  }
  std::fclose(f);
  return value;
}

double percentile(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

/// One emulated browser: long-poll loop with a private cursor. A "slow"
/// client sleeps between polls, the mix the hub must not let starve. A
/// non-empty `client_id` opts into a per-client adaptive pacing session.
/// `force_full` adds full=1 — the tile-delta opt-out, used as the
/// full-resend baseline of the delta scenario.
void client_loop(int port, double duration_s, double inter_poll_delay_s,
                 std::string client_id, bool force_full, std::atomic<bool>& go,
                 ClientResult& out) {
  ricsa::web::HttpClient http(port);
  // Join at the live head: replaying the retention window would count old
  // frames (with old publish stamps) as slow deliveries.
  std::uint64_t since = 0;
  try {
    const auto state = http.get("/api/state", 10.0);
    since = static_cast<std::uint64_t>(
        Json::parse(state.body).at("seq").as_number());
  } catch (const std::exception&) {
  }
  while (!go.load()) std::this_thread::yield();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(duration_s);
  while (std::chrono::steady_clock::now() < deadline) {
    const double t0 = bench_now_unix_ms();
    ricsa::web::HttpClient::Response r;
    try {
      r = http.get("/api/poll?since=" + std::to_string(since) +
                       "&delta=1&timeout=2" + (force_full ? "&full=1" : "") +
                       (client_id.empty() ? "" : "&client=" + client_id),
                   10.0);
    } catch (const std::exception&) {
      ++out.errors;
      continue;
    }
    const double t1 = bench_now_unix_ms();
    ++out.polls;
    if (r.status != 200) {
      ++out.errors;
      continue;
    }
    Json body;
    try {
      body = Json::parse(r.body);
    } catch (const std::exception&) {
      ++out.errors;
      continue;
    }
    if (body.contains("timeout")) {
      ++out.timeouts;
      continue;
    }
    const auto seq = static_cast<std::uint64_t>(body.at("seq").as_number());
    if (seq <= since) continue;
    // Adaptive sessions skip frames by design (latest_only pacing); count
    // those separately so `gaps` stays the hub-correctness signal.
    if (since != 0 && seq != since + 1) {
      if (client_id.empty()) ++out.gaps;
      else out.skips += seq - since - 1;
    }
    // Tile-delta protocol accounting. `since` doubles as the composited
    // cursor: a gap-free client composites every frame, so tiles must
    // always anchor at exactly the previous frame received.
    if (body.contains("tiles")) {
      ++out.tile_frames;
      out.tiles_received += body.at("tiles").as_array().size();
      if (static_cast<std::uint64_t>(body.at("base_seq").as_number()) !=
          since) {
        ++out.delta_breaks;
      }
    } else if (body.contains("image_b64")) {
      ++out.image_frames;
    }
    since = seq;
    ++out.frames;
    out.bytes += r.body.size();
    const std::size_t tier =
        body.contains("tier") ? tier_index(body.at("tier").as_string()) : 0;
    ++out.tier_frames[tier];
    out.tier_bytes[tier] += r.body.size();
    out.rtt_ms.push_back(t1 - t0);
    if (body.at("state").contains("published_ms")) {
      out.delivery_ms.push_back(t1 -
                                body.at("state").at("published_ms").as_number());
    }
    if (inter_poll_delay_s > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(inter_poll_delay_s));
    }
  }
  out.reconnects = http.reconnects();
}

/// `orbit` drives /api/view azimuth changes at frame cadence for the round:
/// every frame renders a different image (the live-visualization regime the
/// tier pipeline targets), instead of the byte-identical PNGs a converged
/// tiny simulation produces.
///
/// `paced_fraction` of the clients present a session identity and get
/// per-client adaptive pacing (1.0 = the adaptive rounds, 0.0 = baseline,
/// in between = the fanout scenario's mixed population).
///
/// `force_full` makes every client ask for complete frames (full=1) — the
/// delta scenario's full-resend baseline.
Json run_round(ricsa::web::AjaxFrontEnd& frontend, int port, int n_clients,
               double duration_s, double slow_fraction, double paced_fraction,
               bool orbit, double frame_interval_s, bool force_full = false) {
  const std::uint64_t seq_before = frontend.frame_seq();
  const auto stats_before = frontend.hub().stats();

  std::vector<ClientResult> results(static_cast<std::size_t>(n_clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_clients));
  std::atomic<bool> go{false};
  const int n_slow = static_cast<int>(slow_fraction * n_clients);
  // Fresh session identities per round: reusing ids would leak one round's
  // adapted tier state into the next.
  static std::atomic<int> round_counter{0};
  const int round = round_counter++;
  int n_paced = 0;
  for (int i = 0; i < n_clients; ++i) {
    // Slow consumers sleep ~3 frame intervals between polls — tied to the
    // cadence so they stay genuinely slower than publication at any
    // --frame-interval-s (a fixed delay under the interval would make the
    // "slow" cohort indistinguishable from the fast one).
    const double delay =
        i < n_slow ? std::max(0.15, 3.0 * frame_interval_s) : 0.0;
    // Spread paced clients evenly through the population so both the slow
    // and the fast mix contain paced and unpaced members.
    const bool paced =
        static_cast<int>(static_cast<double>(i) * paced_fraction) !=
        static_cast<int>(static_cast<double>(i + 1) * paced_fraction);
    n_paced += paced ? 1 : 0;
    const std::string client_id =
        paced ? "bench-r" + std::to_string(round) + "-c" + std::to_string(i)
              : std::string();
    threads.emplace_back(client_loop, port, duration_s, delay, client_id,
                         force_full, std::ref(go),
                         std::ref(results[static_cast<std::size_t>(i)]));
  }
  // Process-wide resource sampler: peak fds and threads *during* the round
  // (after it, the client sockets and threads are gone again).
  std::atomic<bool> sampling{true};
  std::size_t peak_fds = 0;
  long peak_threads = 0;
  std::thread sampler([&] {
    while (sampling.load()) {
      peak_fds = std::max(peak_fds, count_open_fds());
      peak_threads = std::max(peak_threads, proc_status_value("Threads"));
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
  std::atomic<bool> orbiting{orbit};
  std::thread orbit_thread;
  if (orbit) {
    orbit_thread = std::thread([port, frame_interval_s, &orbiting] {
      ricsa::web::HttpClient http(port);
      int k = 0;
      while (orbiting.load()) {
        const std::string body = "{\"azimuth\": " +
                                 std::to_string(0.7 + 0.031 * (k++ % 100)) +
                                 "}";
        try {
          http.post("/api/view", body);
        } catch (const std::exception&) {
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(frame_interval_s));
      }
    });
  }
  const double t0 = bench_now_unix_ms();
  go.store(true);
  for (auto& t : threads) t.join();
  const double elapsed_s = (bench_now_unix_ms() - t0) / 1000.0;
  orbiting.store(false);
  if (orbit_thread.joinable()) orbit_thread.join();
  sampling.store(false);
  sampler.join();

  ClientResult total;
  std::vector<double> fast_delivery_ms;  // prompt pollers only: the hub's
                                         // own fan-out latency, not the
                                         // client-chosen replay pace
  std::uint64_t min_frames = results.empty() ? 0 : results.front().frames;
  for (int i = 0; i < n_clients; ++i) {
    const ClientResult& r = results[static_cast<std::size_t>(i)];
    total.delivery_ms.insert(total.delivery_ms.end(), r.delivery_ms.begin(),
                             r.delivery_ms.end());
    if (i >= n_slow) {
      fast_delivery_ms.insert(fast_delivery_ms.end(), r.delivery_ms.begin(),
                              r.delivery_ms.end());
    }
    total.rtt_ms.insert(total.rtt_ms.end(), r.rtt_ms.begin(), r.rtt_ms.end());
    total.frames += r.frames;
    total.polls += r.polls;
    total.gaps += r.gaps;
    total.skips += r.skips;
    total.timeouts += r.timeouts;
    total.errors += r.errors;
    total.bytes += r.bytes;
    total.tile_frames += r.tile_frames;
    total.tiles_received += r.tiles_received;
    total.image_frames += r.image_frames;
    total.delta_breaks += r.delta_breaks;
    for (std::size_t t = 0; t < 3; ++t) {
      total.tier_frames[t] += r.tier_frames[t];
      total.tier_bytes[t] += r.tier_bytes[t];
    }
    total.reconnects += std::max(0, r.reconnects);
    min_frames = std::min(min_frames, r.frames);
  }

  Json out;
  out["clients"] = n_clients;
  out["slow_clients"] = n_slow;
  out["paced_clients"] = n_paced;
  out["adaptive"] = paced_fraction > 0.0;
  out["full_resend"] = force_full;
  out["duration_s"] = elapsed_s;
  out["frames_published"] =
      static_cast<double>(frontend.frame_seq() - seq_before);
  out["polls"] = static_cast<double>(total.polls);
  out["frames_delivered"] = static_cast<double>(total.frames);
  out["frames_delivered_min_per_client"] = static_cast<double>(min_frames);
  out["deliveries_per_sec"] =
      static_cast<double>(total.frames) / std::max(1e-9, elapsed_s);
  out["gaps"] = static_cast<double>(total.gaps);
  out["pacing_skips"] = static_cast<double>(total.skips);
  out["timeouts"] = static_cast<double>(total.timeouts);
  out["errors"] = static_cast<double>(total.errors);
  out["client_reconnects"] = static_cast<double>(total.reconnects);
  out["bytes_total"] = static_cast<double>(total.bytes);
  out["bandwidth_Bps"] =
      static_cast<double>(total.bytes) / std::max(1e-9, elapsed_s);
  out["bytes_per_frame"] =
      total.frames > 0
          ? static_cast<double>(total.bytes) / static_cast<double>(total.frames)
          : 0.0;
  {
    Json image_delta;
    image_delta["tile_frames"] = static_cast<double>(total.tile_frames);
    image_delta["tiles_received"] = static_cast<double>(total.tiles_received);
    image_delta["full_image_frames"] = static_cast<double>(total.image_frames);
    image_delta["delta_breaks"] = static_cast<double>(total.delta_breaks);
    out["image_delta"] = image_delta;
  }
  {
    static const char* kTierNames[3] = {"full", "half", "state"};
    Json tiers;
    for (std::size_t t = 0; t < 3; ++t) {
      Json tier;
      tier["frames"] = static_cast<double>(total.tier_frames[t]);
      tier["bytes"] = static_cast<double>(total.tier_bytes[t]);
      tier["bandwidth_Bps"] =
          static_cast<double>(total.tier_bytes[t]) / std::max(1e-9, elapsed_s);
      tiers[kTierNames[t]] = tier;
    }
    out["tiers"] = tiers;
  }

  Json delivery;
  delivery["p50_ms"] = percentile(total.delivery_ms, 50);
  delivery["p90_ms"] = percentile(total.delivery_ms, 90);
  delivery["p99_ms"] = percentile(total.delivery_ms, 99);
  delivery["max_ms"] =
      total.delivery_ms.empty()
          ? 0.0
          : *std::max_element(total.delivery_ms.begin(), total.delivery_ms.end());
  out["delivery_latency"] = delivery;

  if (!fast_delivery_ms.empty()) {
    Json fast;
    fast["p50_ms"] = percentile(fast_delivery_ms, 50);
    fast["p90_ms"] = percentile(fast_delivery_ms, 90);
    fast["p99_ms"] = percentile(fast_delivery_ms, 99);
    fast["max_ms"] = *std::max_element(fast_delivery_ms.begin(),
                                       fast_delivery_ms.end());
    out["delivery_latency_fast_clients"] = fast;
  }

  Json rtt;
  rtt["p50_ms"] = percentile(total.rtt_ms, 50);
  rtt["p90_ms"] = percentile(total.rtt_ms, 90);
  rtt["p99_ms"] = percentile(total.rtt_ms, 99);
  out["poll_rtt"] = rtt;

  const auto stats_after = frontend.hub().stats();
  Json hub;
  hub["waiting_peak"] = static_cast<double>(stats_after.waiting_peak);
  hub["served"] = static_cast<double>(stats_after.served - stats_before.served);
  hub["hub_timeouts"] =
      static_cast<double>(stats_after.timeouts - stats_before.timeouts);
  out["hub"] = hub;

  // Encoder-side compression accounting over this round: raw framebuffer
  // bytes handed to the PNG encoder vs compressed bytes it produced,
  // across every full-frame and tile-rect encode the hub performed. The
  // wire bytes above additionally carry base64 and JSON framing, so this
  // is the codec's own ratio, not the end-to-end one.
  out["codec"] = "deflate";
  {
    const double enc_in = static_cast<double>(stats_after.image_bytes_in -
                                              stats_before.image_bytes_in);
    const double enc_out = static_cast<double>(stats_after.image_bytes_out -
                                               stats_before.image_bytes_out);
    Json compression;
    compression["raw_bytes_in"] = enc_in;
    compression["png_bytes_out"] = enc_out;
    compression["compression_ratio"] = enc_out > 0 ? enc_in / enc_out : 0.0;
    out["compression"] = compression;
  }

  // Process-wide peaks during the round. Both ends of every connection are
  // in this process, so fds ~ 2x clients + constants, and threads include
  // the bench's own client threads — the *server's* thread budget is the
  // constant reported at the top level of the report.
  Json process;
  process["peak_fds"] = static_cast<double>(peak_fds);
  process["peak_threads"] = static_cast<double>(peak_threads);
  process["peak_rss_kb"] = static_cast<double>(proc_status_value("VmHWM"));
  out["process"] = process;
  return out;
}

void accumulate(const ClientResult& r, ClientResult& total) {
  total.delivery_ms.insert(total.delivery_ms.end(), r.delivery_ms.begin(),
                           r.delivery_ms.end());
  total.rtt_ms.insert(total.rtt_ms.end(), r.rtt_ms.begin(), r.rtt_ms.end());
  total.frames += r.frames;
  total.polls += r.polls;
  total.gaps += r.gaps;
  total.skips += r.skips;
  total.timeouts += r.timeouts;
  total.errors += r.errors;
  total.bytes += r.bytes;
  total.wire_bytes += r.wire_bytes;
  total.tile_frames += r.tile_frames;
  total.tiles_received += r.tiles_received;
  total.image_frames += r.image_frames;
  total.delta_breaks += r.delta_breaks;
  for (std::size_t t = 0; t < 3; ++t) {
    total.tier_frames[t] += r.tier_frames[t];
    total.tier_bytes[t] += r.tier_bytes[t];
  }
  total.reconnects += std::max(0, r.reconnects);
  total.errors_503 += r.errors_503;
  total.errors_http += r.errors_http;
  total.errors_parse += r.errors_parse;
  total.errors_io += r.errors_io;
}

Json latency_json(std::vector<double>& xs) {
  Json out;
  out["p50_ms"] = percentile(xs, 50);
  out["p90_ms"] = percentile(xs, 90);
  out["p99_ms"] = percentile(xs, 99);
  out["max_ms"] = xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
  return out;
}

/// Sum of the per-shard hub stats across every live view — the registry-
/// wide equivalent of run_round's single-hub before/after snapshot.
ricsa::web::FrameHub::Stats registry_stats(ricsa::web::AjaxFrontEnd& fe) {
  ricsa::web::FrameHub::Stats sum;
  for (const std::string& name : fe.registry().view_names()) {
    const auto hub = fe.registry().find(name);
    if (!hub) continue;
    const auto s = hub->stats();
    sum.published += s.published;
    sum.served += s.served;
    sum.timeouts += s.timeouts;
    sum.waiting_peak = std::max(sum.waiting_peak, s.waiting_peak);
  }
  return sum;
}

/// One round driven by the epoll client fleet (one load-generator thread,
/// however many clients) — the fanout, shard, and transport scenarios.
/// `scenario`, `view_count`, and `slow_view` tag shard rounds so
/// bench_delta.py can match rounds across runs by (scenario, view_count,
/// slow-view presence); fanout rounds pass empty tags and keep their
/// historical round key. `transport` tags the transport scenario's rounds
/// ("long-poll" vs "sse") — empty everywhere else, so pre-transport
/// artifacts keep matching too.
Json run_fleet_round(ricsa::web::AjaxFrontEnd& frontend, int port,
                     const std::vector<ClientSpec>& specs, double duration_s,
                     const std::string& scenario, std::size_t view_count,
                     const std::string& slow_view,
                     const std::string& transport = "") {
  // Let the server reap the previous round's connections first: starting a
  // new full fleet while the old one's FINs are still queued would
  // transiently double the connection count and 503 the overlap.
  for (int i = 0; i < 300 && frontend.server().connections_open() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto stats_before = registry_stats(frontend);

  // Process-wide resource sampler, as in run_round: peaks *during* the
  // round. The expected thread picture here is the server budget plus ONE
  // fleet thread — the satellite's point.
  std::atomic<bool> sampling{true};
  std::size_t peak_fds = 0;
  long peak_threads = 0;
  std::thread sampler([&] {
    while (sampling.load()) {
      peak_fds = std::max(peak_fds, count_open_fds());
      peak_threads = std::max(peak_threads, proc_status_value("Threads"));
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  const double t0 = bench_now_unix_ms();
  EpollClientFleet fleet(port, specs);
  std::vector<ClientResult> results = fleet.run(duration_s);
  const double elapsed_s = (bench_now_unix_ms() - t0) / 1000.0;
  sampling.store(false);
  sampler.join();

  ClientResult total;
  std::vector<double> fast_delivery_ms;
  std::uint64_t min_frames = results.empty() ? 0 : results.front().frames;
  std::map<std::string, ClientResult> by_view;
  std::map<std::string, int> view_clients;
  for (std::size_t i = 0; i < results.size(); ++i) {
    accumulate(results[i], total);
    if (!specs[i].slow) {
      fast_delivery_ms.insert(fast_delivery_ms.end(),
                              results[i].delivery_ms.begin(),
                              results[i].delivery_ms.end());
    }
    min_frames = std::min(min_frames, results[i].frames);
    if (!specs[i].view.empty()) {
      accumulate(results[i], by_view[specs[i].view]);
      ++view_clients[specs[i].view];
    }
  }

  Json out;
  out["clients"] = static_cast<int>(specs.size());
  int n_slow = 0;
  int n_paced = 0;
  for (const ClientSpec& spec : specs) {
    n_slow += spec.slow ? 1 : 0;
    n_paced += spec.client_id.empty() ? 0 : 1;
  }
  out["slow_clients"] = n_slow;
  out["paced_clients"] = n_paced;
  out["adaptive"] = n_paced > 0;
  out["full_resend"] = false;
  out["harness"] = "epoll";
  if (!scenario.empty()) {
    out["scenario"] = scenario;
    out["view_count"] = static_cast<int>(view_count);
    out["slow_view"] = slow_view;
  }
  if (!transport.empty()) out["transport"] = transport;
  out["duration_s"] = elapsed_s;
  out["polls"] = static_cast<double>(total.polls);
  out["frames_delivered"] = static_cast<double>(total.frames);
  out["frames_delivered_min_per_client"] = static_cast<double>(min_frames);
  out["deliveries_per_sec"] =
      static_cast<double>(total.frames) / std::max(1e-9, elapsed_s);
  out["gaps"] = static_cast<double>(total.gaps);
  out["pacing_skips"] = static_cast<double>(total.skips);
  out["timeouts"] = static_cast<double>(total.timeouts);
  out["errors"] = static_cast<double>(total.errors);
  {
    Json errs;
    errs["http_503"] = static_cast<double>(total.errors_503);
    errs["http_other"] = static_cast<double>(total.errors_http);
    errs["parse"] = static_cast<double>(total.errors_parse);
    errs["io"] = static_cast<double>(total.errors_io);
    out["error_breakdown"] = errs;
  }
  out["client_reconnects"] = static_cast<double>(total.reconnects);
  out["bytes_total"] = static_cast<double>(total.bytes);
  out["bandwidth_Bps"] =
      static_cast<double>(total.bytes) / std::max(1e-9, elapsed_s);
  out["bytes_per_frame"] =
      total.frames > 0
          ? static_cast<double>(total.bytes) / static_cast<double>(total.frames)
          : 0.0;
  // Transport envelope cost: everything on the wire that is not frame
  // body — request lines, response headers, chunk and SSE event framing —
  // amortized per delivered frame. This is the long-poll vs SSE headline.
  out["wire_bytes_total"] = static_cast<double>(total.wire_bytes);
  out["overhead_bytes_per_frame"] =
      total.frames > 0
          ? static_cast<double>(total.wire_bytes - total.bytes) /
                static_cast<double>(total.frames)
          : 0.0;
  {
    Json image_delta;
    image_delta["tile_frames"] = static_cast<double>(total.tile_frames);
    image_delta["tiles_received"] = static_cast<double>(total.tiles_received);
    image_delta["full_image_frames"] = static_cast<double>(total.image_frames);
    image_delta["delta_breaks"] = static_cast<double>(total.delta_breaks);
    out["image_delta"] = image_delta;
  }
  out["delivery_latency"] = latency_json(total.delivery_ms);
  if (!fast_delivery_ms.empty()) {
    out["delivery_latency_fast_clients"] = latency_json(fast_delivery_ms);
  }
  out["poll_rtt"] = latency_json(total.rtt_ms);

  // Per-view breakdown: the cross-shard isolation evidence. Every view
  // reports its own gap/error/latency numbers, and views whose clients are
  // all prompt additionally report them under `fast` for the bench_delta
  // per-view gate.
  if (!by_view.empty()) {
    Json views;
    for (auto& [name, r] : by_view) {
      Json v;
      v["clients"] = view_clients[name];
      v["slow"] = name == slow_view;
      v["frames"] = static_cast<double>(r.frames);
      v["gaps"] = static_cast<double>(r.gaps);
      v["errors"] = static_cast<double>(r.errors);
      v["timeouts"] = static_cast<double>(r.timeouts);
      v["bytes"] = static_cast<double>(r.bytes);
      v["delivery_latency"] = latency_json(r.delivery_ms);
      views[name] = v;
    }
    out["views"] = views;
  }

  const auto stats_after = registry_stats(frontend);
  Json hub;
  hub["waiting_peak"] = static_cast<double>(stats_after.waiting_peak);
  hub["served"] = static_cast<double>(stats_after.served - stats_before.served);
  hub["hub_timeouts"] =
      static_cast<double>(stats_after.timeouts - stats_before.timeouts);
  out["frames_published"] =
      static_cast<double>(stats_after.published - stats_before.published);
  out["hub"] = hub;

  Json process;
  process["peak_fds"] = static_cast<double>(peak_fds);
  process["peak_threads"] = static_cast<double>(peak_threads);
  process["peak_rss_kb"] = static_cast<double>(proc_status_value("VmHWM"));
  out["process"] = process;
  return out;
}

/// One relay-scenario fleet run. The specs carry per-client ports (the
/// origin for the direct baseline, relay ports for the relayed round), so
/// the same function measures both sides of the comparison; what changes
/// is who the clients talk to — the origin's own counters are sampled
/// either way, and that asymmetry is the result.
Json run_relay_round(ricsa::web::AjaxFrontEnd& origin,
                     const std::vector<ricsa::relay::RelayNode*>& relays,
                     int origin_port, const std::vector<ClientSpec>& specs,
                     double duration_s, int relay_depth, int relay_fanout) {
  // Let the previous round's connections drain (relay upstream links stay
  // up by design, so wait for the *fleet's* connections only: the floor is
  // one upstream connection per relay).
  const std::size_t floor = relays.size();
  for (int i = 0; i < 300 && origin.server().connections_open() > floor; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const std::uint64_t origin_bytes_before = origin.server().bytes_sent();
  const std::uint64_t origin_served_before = origin.server().requests_served();

  // Origin connection peak *during* the round: the capacity headline. The
  // direct round should peak at the client count; the relayed round at the
  // relay fan-out.
  std::atomic<bool> sampling{true};
  std::size_t origin_conn_peak = 0;
  std::thread sampler([&] {
    while (sampling.load()) {
      origin_conn_peak =
          std::max(origin_conn_peak, origin.server().connections_open());
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  const double t0 = bench_now_unix_ms();
  EpollClientFleet fleet(origin_port, specs);
  std::vector<ClientResult> results = fleet.run(duration_s);
  const double elapsed_s = (bench_now_unix_ms() - t0) / 1000.0;
  sampling.store(false);
  sampler.join();

  ClientResult total;
  std::uint64_t min_frames = results.empty() ? 0 : results.front().frames;
  for (const ClientResult& r : results) {
    accumulate(r, total);
    min_frames = std::min(min_frames, r.frames);
  }

  Json out;
  out["scenario"] = "relay";
  out["harness"] = "epoll";
  out["clients"] = static_cast<int>(specs.size());
  out["relay_depth"] = relay_depth;
  out["relay_fanout"] = relay_fanout;
  out["duration_s"] = elapsed_s;
  out["polls"] = static_cast<double>(total.polls);
  out["frames_delivered"] = static_cast<double>(total.frames);
  out["frames_delivered_min_per_client"] = static_cast<double>(min_frames);
  out["deliveries_per_sec"] =
      static_cast<double>(total.frames) / std::max(1e-9, elapsed_s);
  out["gaps"] = static_cast<double>(total.gaps);
  out["timeouts"] = static_cast<double>(total.timeouts);
  out["errors"] = static_cast<double>(total.errors);
  {
    Json errs;
    errs["http_503"] = static_cast<double>(total.errors_503);
    errs["http_other"] = static_cast<double>(total.errors_http);
    errs["parse"] = static_cast<double>(total.errors_parse);
    errs["io"] = static_cast<double>(total.errors_io);
    out["error_breakdown"] = errs;
  }
  out["client_reconnects"] = static_cast<double>(total.reconnects);
  out["bytes_total"] = static_cast<double>(total.bytes);
  out["bytes_per_frame"] =
      total.frames > 0
          ? static_cast<double>(total.bytes) / static_cast<double>(total.frames)
          : 0.0;
  {
    Json image_delta;
    image_delta["tile_frames"] = static_cast<double>(total.tile_frames);
    image_delta["tiles_received"] = static_cast<double>(total.tiles_received);
    image_delta["full_image_frames"] = static_cast<double>(total.image_frames);
    image_delta["delta_breaks"] = static_cast<double>(total.delta_breaks);
    out["image_delta"] = image_delta;
  }
  out["delivery_latency"] = latency_json(total.delivery_ms);
  out["poll_rtt"] = latency_json(total.rtt_ms);

  // What the origin paid for this round — the tree's whole point.
  out["origin_connections_peak"] = static_cast<double>(origin_conn_peak);
  out["origin_bytes_sent"] =
      static_cast<double>(origin.server().bytes_sent() - origin_bytes_before);
  out["origin_requests_served"] = static_cast<double>(
      origin.server().requests_served() - origin_served_before);

  // Relay-tier roll-up: forwarding counters plus the never-decodes proof
  // (image_encodes must be zero; every local publish pre-encoded).
  if (!relays.empty()) {
    std::uint64_t image_encodes = 0;
    std::uint64_t preencoded = 0;
    std::uint64_t published = 0;
    std::uint64_t resyncs = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t epoch_changes = 0;
    std::uint64_t relay_bytes = 0;
    for (ricsa::relay::RelayNode* relay : relays) {
      for (const std::string& name : relay->registry().view_names()) {
        const auto hub = relay->registry().find(name);
        if (!hub) continue;
        const ricsa::web::FrameHub::Stats s = hub->stats();
        image_encodes += s.image_encodes;
        preencoded += s.preencoded_publishes;
        published += s.published;
      }
      for (const auto& [view, s] : relay->subscriber().stats()) {
        resyncs += s.resyncs;
        reconnects += s.reconnects;
        epoch_changes += s.epoch_changes;
      }
      relay_bytes += relay->server().bytes_sent();
    }
    Json tier;
    tier["nodes"] = static_cast<int>(relays.size());
    tier["image_encodes"] = static_cast<double>(image_encodes);
    tier["preencoded_publishes"] = static_cast<double>(preencoded);
    tier["frames_published"] = static_cast<double>(published);
    tier["resyncs"] = static_cast<double>(resyncs);
    tier["upstream_reconnects"] = static_cast<double>(reconnects);
    tier["epoch_changes"] = static_cast<double>(epoch_changes);
    tier["bytes_sent_total"] = static_cast<double>(relay_bytes);
    out["relay_tier"] = tier;
  }
  return out;
}

/// Prompt delta-accepting clients split evenly across the relay ports
/// (empty `ports` = everyone on the fleet default, the direct baseline).
std::vector<ClientSpec> relay_specs(int n_clients,
                                    const std::vector<int>& ports) {
  std::vector<ClientSpec> specs(static_cast<std::size_t>(n_clients));
  if (!ports.empty()) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      specs[i].port = ports[i % ports.size()];
    }
  }
  return specs;
}

/// Fleet population for the fanout scenario: same mix the thread-based
/// harness used — `slow_fraction` slow consumers and `paced_fraction`
/// adaptive sessions spread through the population.
std::vector<ClientSpec> fanout_specs(int n_clients, double slow_fraction,
                                     double paced_fraction,
                                     double frame_interval_s, int round) {
  std::vector<ClientSpec> specs;
  specs.reserve(static_cast<std::size_t>(n_clients));
  const int n_slow = static_cast<int>(slow_fraction * n_clients);
  for (int i = 0; i < n_clients; ++i) {
    ClientSpec spec;
    if (i < n_slow) {
      spec.slow = true;
      spec.inter_poll_delay_s = std::max(0.15, 3.0 * frame_interval_s);
    }
    const bool paced =
        static_cast<int>(static_cast<double>(i) * paced_fraction) !=
        static_cast<int>(static_cast<double>(i + 1) * paced_fraction);
    if (paced) {
      spec.client_id =
          "bench-r" + std::to_string(round) + "-c" + std::to_string(i);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Fleet population for the transport scenario: every client prompt and
/// unpaced — the head-to-head isolates the *envelope* cost of the two
/// transports, so pacing skips and think-time pauses would only blur the
/// per-frame overhead number. `sse` flips the whole fleet between the
/// long-poll loop and the /api/stream push channel.
std::vector<ClientSpec> transport_specs(int n_clients, bool sse) {
  std::vector<ClientSpec> specs;
  specs.reserve(static_cast<std::size_t>(n_clients));
  for (int i = 0; i < n_clients; ++i) {
    ClientSpec spec;
    spec.sse = sse;
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Fleet population for the multireactor scenario: every client prompt,
/// unpaced, long-poll. Raw serving capacity is the measurement — pacing
/// skips or think-time pauses would mask the reactor saturation point.
std::vector<ClientSpec> plain_specs(int n_clients) {
  return std::vector<ClientSpec>(static_cast<std::size_t>(n_clients));
}

/// Fleet population for the shard scenario: clients split round-robin
/// across the views; every client of `slow_view` (when set) is a slow
/// consumer. Unpaced — per-view gap counts are the correctness signal.
std::vector<ClientSpec> shard_specs(const std::vector<std::string>& views,
                                    int n_clients,
                                    const std::string& slow_view,
                                    double frame_interval_s) {
  std::vector<ClientSpec> specs;
  specs.reserve(static_cast<std::size_t>(n_clients));
  for (int i = 0; i < n_clients; ++i) {
    ClientSpec spec;
    spec.view = views[static_cast<std::size_t>(i) % views.size()];
    if (spec.view == slow_view) {
      spec.slow = true;
      spec.inter_poll_delay_s = std::max(0.15, 3.0 * frame_interval_s);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// One emulated browser of the congestion scenario: a production
/// ClientSession paced by the controller under test, its deliveries
/// serialized through its own netsim last-mile link (slow clients share
/// theirs with an on/off cross-traffic source).
struct CongestionClient {
  std::unique_ptr<ricsa::web::ClientSession> session;
  ricsa::netsim::Link* link = nullptr;  // owned by the round's link pool
  bool slow = false;
  std::uint64_t since = 0;
  std::uint64_t frames = 0;
  std::uint64_t skips = 0;
  std::uint64_t bytes = 0;
  std::uint64_t downgrades = 0;
  std::uint64_t upgrades = 0;
  ricsa::web::Tier last_tier = ricsa::web::Tier::kFull;
  std::vector<double> delivery_ms;
};

/// One controller's virtual-time round: n_clients long-poll sessions (the
/// slow fraction behind a congested last-mile) against an ideal publisher
/// at `cadence_s`, for `duration_s` *simulated* seconds. The serve loop
/// mirrors the origin server's: decide() at poll time (tier, not_before,
/// skip_to_latest), dispatch stamped at wire handoff, on_delivered() at
/// the link's delivery instant — so the controller sees exactly the RTT
/// bracket production code feeds it.
Json run_congestion_round(ricsa::transport::ControllerKind kind,
                          int n_clients, double slow_fraction,
                          double duration_s, double cadence_s) {
  namespace ns = ricsa::netsim;
  using ricsa::web::ClientSession;
  using ricsa::web::Tier;

  ns::Simulator sim;
  ricsa::web::PacingConfig pacing;
  pacing.frame_interval_s = cadence_s;
  pacing.controller.kind = kind;

  // Tier body sizes (bytes), mirroring the pacing test's full/half/state
  // ratio; the wire adds a fixed envelope per response.
  const std::size_t kTierBytes[3] = {20000, 6000, 900};
  const double kEnvelopeBytes = 160.0;

  const int n_slow = static_cast<int>(slow_fraction * n_clients);
  // Slow clients share a congested bottleneck in groups of four — a
  // branch-office uplink with competing cross traffic. Sharing is what
  // makes pacing causal: send faster than the group's fair share and the
  // standing queue (everyone's RTT) grows, which the delay laws see
  // immediately and utilization-only feedback sees only after deliveries
  // collapse. Fast clients get private ample links.
  constexpr int kSlowShare = 4;
  std::vector<std::unique_ptr<ns::Link>> links;
  std::vector<std::unique_ptr<ns::CrossTraffic>> crosses;
  std::vector<std::unique_ptr<CongestionClient>> clients;
  clients.reserve(static_cast<std::size_t>(n_clients));
  const auto make_link = [&](bool slow, int index) {
    ns::LinkConfig lc;
    // No random loss and a deep queue: congestion shows up as queueing
    // delay (the delay laws' signal) and collapsed utilization (RMSA's),
    // never as a wedged client.
    lc.queue_capacity_bytes = 1 << 20;
    if (slow) {
      // 250 KB/s for four clients: full tier at cadence wants 1.6 MB/s,
      // half tier wants 480 KB/s — the group can hold quality only by
      // stretching its pace, and the boundary is where probing laws flap.
      lc.bandwidth_Bps = 2.5e5;
      lc.prop_delay_s = 0.02;
    } else {
      lc.bandwidth_Bps = 2.5e6;
      lc.prop_delay_s = 0.005;
    }
    links.push_back(std::make_unique<ns::Link>(
        sim, lc,
        0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1)));
    ns::Link* link = links.back().get();
    if (slow) {
      ns::CrossTrafficConfig ct;
      ct.on_load = 0.5;
      ct.mean_on_s = 1.0;
      ct.mean_off_s = 1.0;
      crosses.push_back(std::make_unique<ns::CrossTraffic>(
          sim, *link, ct,
          0xd1b54a32d192ed03ull * static_cast<std::uint64_t>(index + 1)));
      crosses.back()->start();
    }
    return link;
  };
  ns::Link* shared_slow_link = nullptr;
  for (int i = 0; i < n_clients; ++i) {
    auto c = std::make_unique<CongestionClient>();
    c->slow = i < n_slow;
    if (c->slow) {
      if (i % kSlowShare == 0) shared_slow_link = make_link(true, i);
      c->link = shared_slow_link;
    } else {
      c->link = make_link(false, i);
    }
    c->session = std::make_unique<ClientSession>(
        pacing, "sim-" + std::to_string(i), "netsim", 0.0);
    clients.push_back(std::move(c));
  }

  // The ideal publisher: frame seq s exists from s * cadence onward.
  const auto latest_at = [cadence_s](double t) {
    return static_cast<std::uint64_t>(std::floor(t / cadence_s));
  };

  std::function<void(CongestionClient*)> poll =
      [&](CongestionClient* c) {
        if (sim.now() >= duration_s) return;
        const ClientSession::Decision d =
            c->session->decide(sim.now(), cadence_s);
        const double avail = static_cast<double>(c->since + 1) * cadence_s;
        const double serve_t =
            std::max({sim.now(), d.not_before_s, avail});
        sim.at(serve_t, [&, c, d] {
          if (sim.now() >= duration_s) return;
          std::uint64_t seq = c->since + 1;
          if (d.skip_to_latest) seq = std::max(seq, latest_at(sim.now()));
          const std::uint64_t skipped =
              (c->since != 0 && seq > c->since + 1) ? seq - c->since - 1 : 0;
          const std::size_t body =
              kTierBytes[static_cast<std::size_t>(d.tier)];
          const double published_t = static_cast<double>(seq) * cadence_s;
          c->session->note_dispatch(sim.now());
          ns::Packet p;
          p.seq = seq;
          p.wire_bytes = body + static_cast<std::size_t>(kEnvelopeBytes);
          c->link->send(p, [&, c, seq, skipped, body, published_t,
                            tier = d.tier](const ns::Packet&) {
            c->since = seq;
            ++c->frames;
            c->skips += skipped;
            c->bytes += body;
            c->delivery_ms.push_back((sim.now() - published_t) * 1e3);
            c->session->on_delivered(sim.now(), body, skipped, tier,
                                     cadence_s);
            const Tier now_tier = c->session->tier();
            if (now_tier != c->last_tier) {
              if (static_cast<int>(now_tier) > static_cast<int>(c->last_tier)) {
                ++c->downgrades;
              } else {
                ++c->upgrades;
              }
              c->last_tier = now_tier;
            }
            poll(c);
          });
        });
      };
  for (auto& c : clients) poll(c.get());
  // run_until (not run()): the cross-traffic sources schedule themselves
  // forever; the horizon is what ends the round.
  sim.run_until(duration_s);
  for (auto& ct : crosses) ct->stop();

  std::uint64_t flaps = 0, downgrades = 0, upgrades = 0, skips = 0;
  std::uint64_t frames = 0, bytes = 0, slow_bytes = 0;
  double slow_interval_sum = 0.0;
  std::vector<double> fast_delivery_ms, slow_delivery_ms;
  for (const auto& c : clients) {
    downgrades += c->downgrades;
    upgrades += c->upgrades;
    flaps += c->downgrades + c->upgrades;
    skips += c->skips;
    frames += c->frames;
    bytes += c->bytes;
    auto& sink = c->slow ? slow_delivery_ms : fast_delivery_ms;
    sink.insert(sink.end(), c->delivery_ms.begin(), c->delivery_ms.end());
    if (c->slow) {
      slow_bytes += c->bytes;
      slow_interval_sum += c->session->interval_s();
    }
  }

  Json out;
  out["scenario"] = "congestion";
  out["controller"] = ricsa::transport::controller_kind_name(kind);
  out["harness"] = "netsim";
  out["clients"] = n_clients;
  out["slow_clients"] = n_slow;
  out["paced_clients"] = n_clients;
  out["adaptive"] = true;
  out["full_resend"] = false;
  out["duration_s"] = duration_s;
  out["frames_delivered"] = static_cast<double>(frames);
  out["pacing_skips"] = static_cast<double>(skips);
  out["bytes_total"] = static_cast<double>(bytes);
  // The headline pair: oscillation at the capacity boundary vs what the
  // prompt cohort pays for the slow cohort's law.
  out["tier_flaps"] = static_cast<double>(flaps);
  out["tier_downgrades"] = static_cast<double>(downgrades);
  out["tier_upgrades"] = static_cast<double>(upgrades);
  out["delivery_latency_fast_clients"] = latency_json(fast_delivery_ms);
  out["delivery_latency_slow_clients"] = latency_json(slow_delivery_ms);
  out["slow_goodput_Bps"] =
      static_cast<double>(slow_bytes) / std::max(1e-9, duration_s);
  out["slow_interval_s_mean"] =
      n_slow > 0 ? slow_interval_sum / n_slow : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  raise_fd_limit();
  std::vector<int> client_counts = {64, 256, 512};
  bool clients_set = false;
  double duration_s = 4.0;
  bool duration_set = false;
  double slow_fraction = 0.0;
  double frame_interval_s = 0.05;
  bool frame_interval_set = false;
  int relay_count = 4;
  ricsa::transport::ControllerKind controller_kind =
      ricsa::transport::ControllerKind::kRmsa;
  std::string scenario = "plain";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--clients") {
      client_counts.clear();
      clients_set = true;
      for (const std::string& tok : ricsa::util::split(next(), ',')) {
        client_counts.push_back(std::atoi(tok.c_str()));
      }
    } else if (arg == "--duration-s") {
      duration_s = std::atof(next().c_str());
      duration_set = true;
    } else if (arg == "--slow-fraction") {
      slow_fraction = std::atof(next().c_str());
    } else if (arg == "--frame-interval-s") {
      frame_interval_s = std::atof(next().c_str());
      frame_interval_set = true;
    } else if (arg == "--scenario") {
      scenario = next();
    } else if (arg == "--relays") {
      relay_count = std::atoi(next().c_str());
    } else if (arg == "--controller") {
      const std::string name = next();
      if (!ricsa::transport::parse_controller_kind(name, &controller_kind)) {
        std::fprintf(stderr, "unknown --controller '%s'\n", name.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: ajax_fanout [--clients 64,256,512] [--duration-s S]"
                   " [--slow-fraction F] [--frame-interval-s S] [--relays N]"
                   " [--controller rmsa|gradient|trendline]"
                   " [--scenario plain|mixed|fanout|delta|shard|transport|"
                   "multireactor|relay|congestion]\n");
      return 2;
    }
  }
  if ((scenario == "mixed" || scenario == "fanout") && slow_fraction <= 0.0) {
    slow_fraction = 0.25;
  }
  if (scenario == "fanout") {
    // The reactor scaling proof: 8x the thread-per-connection comfort zone
    // by default, at a cadence where the server (not loopback throughput)
    // is what saturates first.
    if (!clients_set) client_counts = {512, 4096};
    if (!frame_interval_set) frame_interval_s = 0.25;
  }
  if (scenario == "shard") {
    // The sharding proof: >= 4 views, >= 512 clients split across them,
    // all on the single-threaded epoll fleet.
    if (!clients_set) client_counts = {512};
    if (!frame_interval_set) frame_interval_s = 0.25;
  }
  if (scenario == "delta") {
    // Bandwidth, not concurrency, is under test: a handful of prompt
    // clients on the localized-change workload is enough signal.
    if (!clients_set) client_counts = {32};
  }
  if (scenario == "transport") {
    // The envelope head-to-head at reactor scale: enough clients that
    // per-frame request overhead is a real aggregate cost, at a cadence
    // where both transports comfortably keep up.
    if (!clients_set) client_counts = {1024};
    if (!frame_interval_set) frame_interval_s = 0.25;
  }
  // The multi-reactor capacity proof: the acceptance fleet is 8k prompt
  // long-poll clients on four reactors, against a single-reactor baseline
  // at the same load and at a quarter of it.
  const std::size_t kMultiReactors = 4;
  if (scenario == "multireactor") {
    if (!clients_set) client_counts = {8192};
    if (!frame_interval_set) frame_interval_s = 0.25;
  }
  if (scenario == "relay") {
    // The fan-out-tree acceptance shape: 1024 end clients, direct vs a
    // 4-relay tier (256 clients each), at a cadence both sides keep up
    // with comfortably.
    if (!clients_set) client_counts = {1024};
    if (!frame_interval_set) frame_interval_s = 0.25;
    relay_count = std::max(1, relay_count);
  }
  if (scenario == "congestion") {
    // The controller A/B runs in virtual time: seconds are simulated, so a
    // long round costs nothing — 60 s is enough for several RMSA probe
    // backoff cycles at the capacity boundary. Half the fleet sits behind
    // the congested last-mile.
    if (!clients_set) client_counts = {32};
    if (!frame_interval_set) frame_interval_s = 0.05;
    if (!duration_set) duration_s = 60.0;
    if (slow_fraction <= 0.0) slow_fraction = 0.5;
  }

  ricsa::web::FrontEndConfig config;
  config.session.resolution = 16;  // small grid: the hub, not the sim, is under test
  config.session.cycles_per_frame = 1;
  // The controller knob reaches every paced session, whatever the
  // scenario; the congestion scenario ignores it (it runs all laws).
  config.pacing.controller.kind = controller_kind;
  config.frame_interval_s = frame_interval_s;
  config.frame_window = 256;
  config.hub_workers = 4;
  if (scenario == "fanout" || scenario == "shard" || scenario == "transport" ||
      scenario == "multireactor" || scenario == "relay") {
    const int biggest =
        *std::max_element(client_counts.begin(), client_counts.end());
    config.max_connections = static_cast<std::size_t>(biggest) + 128;
    // Sessions for every paced client in the biggest round.
    config.pacing.max_sessions = static_cast<std::size_t>(biggest) + 64;
  }
  // The shard scenario's view namespace: the default "main" view plus three
  // fixed projections, each published into its own hub shard every frame.
  // Small images and a bounded raw window keep 4x per-frame rendering CI-
  // sized; fine tiles keep the delta protocol engaged on every shard.
  std::vector<std::string> shard_views = {"main"};
  if (scenario == "shard") {
    config.session.viz.isovalue = 1.1f;
    config.session.viz.image_width = 64;
    config.session.viz.image_height = 64;
    config.tile_size = 16;
    config.raw_window = 32;
    const float azimuths[3] = {1.6f, 2.8f, 4.1f};
    const char* names[3] = {"rho/iso", "pressure/iso", "energy/iso"};
    for (int v = 0; v < 3; ++v) {
      ricsa::web::ViewSpec spec;
      spec.name = names[v];
      spec.viz = config.session.viz;
      spec.camera.azimuth = azimuths[v];
      spec.camera.zoom = 1.0f + 0.2f * static_cast<float>(v);
      config.views.push_back(spec);
      shard_views.push_back(spec.name);
    }
  }
  if (scenario == "mixed") {
    // The tier pipeline is about image bandwidth: render an isosurface that
    // actually exists (and therefore changes frame to frame as the bow
    // shock evolves and the view orbits), at a size where the client mix —
    // not loopback throughput — is what is being measured.
    config.session.viz.isovalue = 1.1f;
    config.session.viz.image_width = 128;
    config.session.viz.image_height = 128;
    // Fine enough tiles that image deltas engage at this size — the
    // adaptive round then exercises cursor-anchored deltas under real
    // pacing skips (delta_breaks is the protocol-correctness signal).
    config.tile_size = 24;
  }
  if (scenario == "delta") {
    // The localized-change workload: a steady isosurface under an orbiting
    // view. The object occupies the middle of the frame; the background
    // never changes, so dirty-rect tiles should carry a fraction of the
    // full image. A finer grid than the 64-px default keeps tiles
    // meaningful at this image size.
    config.session.viz.isovalue = 1.1f;
    config.session.viz.image_width = 192;
    config.session.viz.image_height = 192;
    config.tile_size = 24;
  }
  // Mixed rounds each get a fresh front end: sessions left behind by one
  // adaptive round (idle expiry is 60 s) must not contaminate the next
  // round's baseline (wants_half_tier) or eat into the session cap.
  // The multireactor scenario flips config.reactors between rounds; every
  // other scenario runs the default single reactor.
  if (scenario == "multireactor") config.reactors = kMultiReactors;
  std::unique_ptr<ricsa::web::AjaxFrontEnd> frontend;
  int port = 0;
  const auto fresh_frontend = [&] {
    if (frontend) frontend->stop();
    frontend = std::make_unique<ricsa::web::AjaxFrontEnd>(config);
    port = frontend->start();
    // Let the monitor loop publish its first frames before measuring.
    while (frontend->frame_seq() < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  };
  // The congestion scenario is pure virtual time — no server, no sockets.
  if (scenario != "congestion") {
    fresh_frontend();
    std::fprintf(stderr,
                 "[ajax_fanout] hub on port %d, frame interval %.0f ms\n",
                 port, frame_interval_s * 1e3);
  }

  Json rounds{ricsa::util::JsonArray{}};
  Json comparisons{ricsa::util::JsonArray{}};
  bool first_round = true;
  for (const int n : client_counts) {
    if (scenario == "mixed") {
      if (!first_round) fresh_frontend();
      // Same fast/slow client mix twice: adaptive pacing off (baseline:
      // everyone full tier) then on. Slow consumers must stop inflating
      // total bytes sent without costing the fast clients latency.
      std::fprintf(stderr,
                   "[ajax_fanout] %d clients (%.0f%% slow) baseline...\n", n,
                   slow_fraction * 100);
      Json baseline = run_round(*frontend, port, n, duration_s, slow_fraction,
                                0.0, true, frame_interval_s);
      std::fprintf(stderr,
                   "[ajax_fanout] %d clients (%.0f%% slow) adaptive...\n", n,
                   slow_fraction * 100);
      Json adaptive = run_round(*frontend, port, n, duration_s, slow_fraction,
                                1.0, true, frame_interval_s);

      Json cmp;
      cmp["clients"] = n;
      cmp["bytes_baseline"] = baseline.at("bytes_total");
      cmp["bytes_adaptive"] = adaptive.at("bytes_total");
      const double b = baseline.at("bytes_total").as_number();
      const double a = adaptive.at("bytes_total").as_number();
      cmp["bytes_saved_fraction"] = b > 0 ? (b - a) / b : 0.0;
      if (baseline.contains("delivery_latency_fast_clients")) {
        cmp["fast_p99_ms_baseline"] =
            baseline.at("delivery_latency_fast_clients").at("p99_ms");
      }
      if (adaptive.contains("delivery_latency_fast_clients")) {
        cmp["fast_p99_ms_adaptive"] =
            adaptive.at("delivery_latency_fast_clients").at("p99_ms");
      }
      cmp["adaptive_tiers"] = adaptive.at("tiers");
      comparisons.as_array().push_back(cmp);
      rounds.as_array().push_back(std::move(baseline));
      rounds.as_array().push_back(std::move(adaptive));
    } else if (scenario == "delta") {
      if (!first_round) fresh_frontend();
      // Same workload twice: full-frame resends forced (the pre-tile
      // behaviour), then tile deltas accepted. Clients are unpaced and
      // prompt — steady-state sequential polls, where the per-frame delta
      // is exactly one frame's dirty tiles.
      std::fprintf(stderr,
                   "[ajax_fanout] delta: %d clients full-resend baseline...\n",
                   n);
      Json baseline = run_round(*frontend, port, n, duration_s, 0.0, 0.0,
                                /*orbit=*/true, frame_interval_s,
                                /*force_full=*/true);
      std::fprintf(stderr,
                   "[ajax_fanout] delta: %d clients tile deltas...\n", n);
      Json tiled = run_round(*frontend, port, n, duration_s, 0.0, 0.0,
                             /*orbit=*/true, frame_interval_s,
                             /*force_full=*/false);

      Json cmp;
      cmp["clients"] = n;
      const double full_bpf = baseline.at("bytes_per_frame").as_number();
      const double delta_bpf = tiled.at("bytes_per_frame").as_number();
      cmp["bytes_per_frame_full"] = full_bpf;
      cmp["bytes_per_frame_delta"] = delta_bpf;
      cmp["bytes_saved_fraction"] =
          full_bpf > 0 ? (full_bpf - delta_bpf) / full_bpf : 0.0;
      cmp["tile_frames"] = tiled.at("image_delta").at("tile_frames");
      cmp["tiles_received"] = tiled.at("image_delta").at("tiles_received");
      cmp["delta_breaks"] = tiled.at("image_delta").at("delta_breaks");
      cmp["gaps"] = tiled.at("gaps");
      cmp["errors"] = tiled.at("errors");
      cmp["codec"] = tiled.at("codec");
      cmp["compression_ratio"] =
          tiled.at("compression").at("compression_ratio");
      comparisons.as_array().push_back(cmp);
      rounds.as_array().push_back(std::move(baseline));
      rounds.as_array().push_back(std::move(tiled));
    } else if (scenario == "fanout") {
      // Fresh front end per count: one round's adapted sessions and peak
      // stats must not contaminate the next.
      if (!first_round) fresh_frontend();
      std::fprintf(stderr,
                   "[ajax_fanout] fanout: %d clients (%.0f%% slow, 50%% "
                   "paced) on the epoll fleet for %.1f s...\n",
                   n, slow_fraction * 100, duration_s);
      static std::atomic<int> fleet_round{0};
      rounds.as_array().push_back(run_fleet_round(
          *frontend, port,
          fanout_specs(n, slow_fraction, 0.5, frame_interval_s,
                       fleet_round++),
          duration_s, "", 0, ""));
    } else if (scenario == "transport") {
      if (!first_round) fresh_frontend();
      // Same frame source, same client count, both transports: long-poll
      // round first, then a fresh front end and the SSE round. Fleet
      // accounting is field-identical (account_frame runs on both paths),
      // so gaps/delta_breaks/tier counts compare one-to-one; the envelope
      // cost per frame is the differing number.
      std::fprintf(stderr,
                   "[ajax_fanout] transport: %d long-poll clients...\n", n);
      Json poll_round =
          run_fleet_round(*frontend, port, transport_specs(n, false),
                          duration_s, "transport", 0, "", "long-poll");
      fresh_frontend();
      std::fprintf(stderr,
                   "[ajax_fanout] transport: %d SSE stream clients...\n", n);
      Json sse_round =
          run_fleet_round(*frontend, port, transport_specs(n, true),
                          duration_s, "transport", 0, "", "sse");

      Json cmp;
      cmp["clients"] = n;
      cmp["frames_long_poll"] = poll_round.at("frames_delivered");
      cmp["frames_sse"] = sse_round.at("frames_delivered");
      cmp["gaps_long_poll"] = poll_round.at("gaps");
      cmp["gaps_sse"] = sse_round.at("gaps");
      cmp["errors_long_poll"] = poll_round.at("errors");
      cmp["errors_sse"] = sse_round.at("errors");
      cmp["delta_breaks_long_poll"] =
          poll_round.at("image_delta").at("delta_breaks");
      cmp["delta_breaks_sse"] = sse_round.at("image_delta").at("delta_breaks");
      // The headline: bytes of transport envelope per delivered frame.
      // Long-poll pays a request line + response headers per frame; SSE
      // pays one subscription, then chunk + event framing per frame.
      const double lp_ov =
          poll_round.at("overhead_bytes_per_frame").as_number();
      const double sse_ov =
          sse_round.at("overhead_bytes_per_frame").as_number();
      cmp["overhead_bytes_per_frame_long_poll"] = lp_ov;
      cmp["overhead_bytes_per_frame_sse"] = sse_ov;
      cmp["overhead_saved_fraction"] =
          lp_ov > 0 ? (lp_ov - sse_ov) / lp_ov : 0.0;
      cmp["delivery_p99_ms_long_poll"] =
          poll_round.at("delivery_latency").at("p99_ms");
      cmp["delivery_p99_ms_sse"] =
          sse_round.at("delivery_latency").at("p99_ms");
      cmp["sse_subscriptions"] = sse_round.at("polls");
      cmp["sse_keepalives"] = sse_round.at("timeouts");
      comparisons.as_array().push_back(cmp);
      rounds.as_array().push_back(std::move(poll_round));
      rounds.as_array().push_back(std::move(sse_round));
    } else if (scenario == "multireactor") {
      // Same prompt fleet three ways: N reactors at n clients, one reactor
      // at n clients, one reactor at n/N. The capacity headline is the
      // multi/single deliveries-per-second ratio at n; the quarter-load
      // round shows a single reactor is comfortable at n/N — the scaling
      // lives in the reactor count, not the workload.
      const int quarter =
          std::max(1, n / static_cast<int>(kMultiReactors));
      config.reactors = kMultiReactors;
      if (!first_round) fresh_frontend();
      std::fprintf(stderr,
                   "[ajax_fanout] multireactor: %d clients on %zu "
                   "reactors...\n",
                   n, kMultiReactors);
      Json multi = run_fleet_round(*frontend, port, plain_specs(n),
                                   duration_s, "multireactor", 0, "");
      multi["reactors"] = static_cast<int>(kMultiReactors);
      config.reactors = 1;
      fresh_frontend();
      std::fprintf(stderr,
                   "[ajax_fanout] multireactor: %d clients on 1 reactor "
                   "(saturation baseline)...\n",
                   n);
      Json single = run_fleet_round(*frontend, port, plain_specs(n),
                                    duration_s, "multireactor", 0, "");
      single["reactors"] = 1;
      fresh_frontend();
      std::fprintf(stderr,
                   "[ajax_fanout] multireactor: %d clients on 1 reactor "
                   "(quarter load)...\n",
                   quarter);
      Json quarter_load = run_fleet_round(*frontend, port,
                                          plain_specs(quarter), duration_s,
                                          "multireactor", 0, "");
      quarter_load["reactors"] = 1;
      config.reactors = kMultiReactors;

      Json cmp;
      cmp["clients"] = n;
      cmp["reactors"] = static_cast<int>(kMultiReactors);
      cmp["deliveries_per_sec_multi"] = multi.at("deliveries_per_sec");
      cmp["deliveries_per_sec_single"] = single.at("deliveries_per_sec");
      const double dps_multi = multi.at("deliveries_per_sec").as_number();
      const double dps_single = single.at("deliveries_per_sec").as_number();
      // >= 1 means the reactors bought real capacity; the acceptance target
      // at the full 8k fleet is >= 2.5x once a single reactor saturates.
      cmp["capacity_ratio"] = dps_single > 0 ? dps_multi / dps_single : 0.0;
      cmp["gaps_multi"] = multi.at("gaps");
      cmp["gaps_single"] = single.at("gaps");
      cmp["errors_multi"] = multi.at("errors");
      cmp["errors_single"] = single.at("errors");
      cmp["timeouts_multi"] = multi.at("timeouts");
      cmp["timeouts_single"] = single.at("timeouts");
      cmp["delivery_p99_ms_multi"] =
          multi.at("delivery_latency").at("p99_ms");
      cmp["delivery_p99_ms_single"] =
          single.at("delivery_latency").at("p99_ms");
      cmp["clients_single_quarter"] = quarter;
      cmp["gaps_single_quarter"] = quarter_load.at("gaps");
      cmp["delivery_p99_ms_single_quarter"] =
          quarter_load.at("delivery_latency").at("p99_ms");
      comparisons.as_array().push_back(cmp);
      rounds.as_array().push_back(std::move(multi));
      rounds.as_array().push_back(std::move(single));
      rounds.as_array().push_back(std::move(quarter_load));
    } else if (scenario == "relay") {
      if (!first_round) fresh_frontend();
      // Direct baseline: every end client on the origin.
      std::fprintf(stderr, "[ajax_fanout] relay: %d clients direct...\n", n);
      Json direct =
          run_relay_round(*frontend, {}, port, relay_specs(n, {}),
                          duration_s, /*relay_depth=*/1, /*relay_fanout=*/0);

      // Relay tier: `relay_count` nodes subscribe to the origin over SSE,
      // each serving an equal slice of the same fleet (a depth-2 tree).
      std::vector<std::unique_ptr<ricsa::relay::RelayNode>> nodes;
      std::vector<ricsa::relay::RelayNode*> relays;
      std::vector<int> relay_ports;
      const std::size_t per_relay =
          static_cast<std::size_t>(n) / static_cast<std::size_t>(relay_count) +
          128;
      for (int r = 0; r < relay_count; ++r) {
        ricsa::relay::RelayNodeConfig rc;
        rc.subscriber.upstream_port = port;
        rc.subscriber.views = {"main"};
        rc.subscriber.relay_id = "bench-relay-" + std::to_string(r);
        rc.max_connections = per_relay;
        nodes.push_back(std::make_unique<ricsa::relay::RelayNode>(rc));
        relay_ports.push_back(nodes.back()->start());
        relays.push_back(nodes.back().get());
      }
      // Wait for every relay's first forwarded frame: clients joining an
      // empty relay hub would measure the subscription ramp, not steady
      // fan-out.
      for (const auto& node : nodes) {
        const auto hub = node->registry().find("main");
        for (int i = 0; i < 500 && (!hub || hub->seq() < 1); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
      std::fprintf(stderr,
                   "[ajax_fanout] relay: %d clients across %d relays...\n", n,
                   relay_count);
      Json relayed = run_relay_round(*frontend, relays, port,
                                     relay_specs(n, relay_ports), duration_s,
                                     /*relay_depth=*/2, relay_count);
      for (const auto& node : nodes) node->stop();

      Json cmp;
      cmp["clients"] = n;
      cmp["relay_fanout"] = relay_count;
      cmp["origin_connections_direct"] = direct.at("origin_connections_peak");
      cmp["origin_connections_relayed"] =
          relayed.at("origin_connections_peak");
      cmp["origin_bytes_direct"] = direct.at("origin_bytes_sent");
      cmp["origin_bytes_relayed"] = relayed.at("origin_bytes_sent");
      const double bytes_direct = direct.at("origin_bytes_sent").as_number();
      const double bytes_relayed = relayed.at("origin_bytes_sent").as_number();
      // The headline: how many times less the origin sends at the same
      // end-client count (acceptance: >= 4x at 4 relays x 256 clients).
      cmp["origin_bytes_reduction"] =
          bytes_relayed > 0 ? bytes_direct / bytes_relayed : 0.0;
      cmp["gaps_direct"] = direct.at("gaps");
      cmp["gaps_relayed"] = relayed.at("gaps");
      cmp["errors_relayed"] = relayed.at("errors");
      cmp["delta_breaks_relayed"] =
          relayed.at("image_delta").at("delta_breaks");
      cmp["delivery_p99_ms_direct"] =
          direct.at("delivery_latency").at("p99_ms");
      cmp["delivery_p99_ms_relayed"] =
          relayed.at("delivery_latency").at("p99_ms");
      // Forwarding-without-decoding: the tier must not have touched an
      // encoder.
      cmp["relay_image_encodes"] =
          relayed.at("relay_tier").at("image_encodes");
      cmp["relay_preencoded_publishes"] =
          relayed.at("relay_tier").at("preencoded_publishes");
      comparisons.as_array().push_back(cmp);
      rounds.as_array().push_back(std::move(direct));
      rounds.as_array().push_back(std::move(relayed));
    } else if (scenario == "shard") {
      if (!first_round) fresh_frontend();
      const std::string slow_view = shard_views.back();
      // Same split twice: every view prompt, then one view's clients slow.
      // Shard isolation means the other views' fast p99 must not move.
      std::fprintf(stderr,
                   "[ajax_fanout] shard: %d clients over %zu views, all "
                   "fast...\n",
                   n, shard_views.size());
      Json baseline = run_fleet_round(
          *frontend, port,
          shard_specs(shard_views, n, "", frame_interval_s), duration_s,
          "shard", shard_views.size(), "");
      std::fprintf(stderr,
                   "[ajax_fanout] shard: %d clients, view '%s' slow...\n", n,
                   slow_view.c_str());
      Json perturbed = run_fleet_round(
          *frontend, port,
          shard_specs(shard_views, n, slow_view, frame_interval_s),
          duration_s, "shard", shard_views.size(), slow_view);

      Json cmp;
      cmp["clients"] = n;
      cmp["view_count"] = static_cast<int>(shard_views.size());
      cmp["slow_view"] = slow_view;
      cmp["gaps_all_fast"] = baseline.at("gaps");
      cmp["gaps_with_slow_view"] = perturbed.at("gaps");
      cmp["errors_all_fast"] = baseline.at("errors");
      cmp["errors_with_slow_view"] = perturbed.at("errors");
      if (baseline.contains("delivery_latency_fast_clients")) {
        cmp["fast_p99_ms_all_fast"] =
            baseline.at("delivery_latency_fast_clients").at("p99_ms");
      }
      if (perturbed.contains("delivery_latency_fast_clients")) {
        // Fast clients here = every client NOT on the slow view: the
        // isolation headline. A shared hub would drag this number up with
        // the slow view's replay traffic.
        cmp["fast_p99_ms_with_slow_view"] =
            perturbed.at("delivery_latency_fast_clients").at("p99_ms");
      }
      {
        // Per-view gap/error roll-up of the perturbed round — the
        // "zero gaps on every view" acceptance check in one place.
        Json views;
        for (const auto& [name, v] : perturbed.at("views").as_object()) {
          Json entry;
          entry["slow"] = v.at("slow");
          entry["gaps"] = v.at("gaps");
          entry["errors"] = v.at("errors");
          entry["p99_ms"] = v.at("delivery_latency").at("p99_ms");
          views[name] = entry;
        }
        cmp["views"] = views;
      }
      comparisons.as_array().push_back(cmp);
      rounds.as_array().push_back(std::move(baseline));
      rounds.as_array().push_back(std::move(perturbed));
    } else if (scenario == "congestion") {
      // Same fleet and WAN, once per law. rmsa is the paper's Eq. 1
      // baseline; gradient is the delay-based candidate under gate;
      // trendline rides along for reference.
      using ricsa::transport::ControllerKind;
      const struct {
        ControllerKind kind;
        const char* name;
      } laws[] = {{ControllerKind::kRmsa, "rmsa"},
                  {ControllerKind::kDelayGradient, "gradient"},
                  {ControllerKind::kTrendline, "trendline"}};
      std::map<std::string, Json> by_law;
      for (const auto& law : laws) {
        std::fprintf(stderr,
                     "[ajax_fanout] congestion: %d clients (%.0f%% slow), "
                     "%s, %.0f virtual s...\n",
                     n, slow_fraction * 100, law.name, duration_s);
        by_law[law.name] = run_congestion_round(law.kind, n, slow_fraction,
                                                duration_s, frame_interval_s);
      }
      Json cmp;
      cmp["clients"] = n;
      for (const auto& law : laws) {
        const Json& r = by_law[law.name];
        const std::string suffix = std::string("_") + law.name;
        cmp["tier_flaps" + suffix] = r.at("tier_flaps");
        cmp["fast_p99_ms" + suffix] =
            r.at("delivery_latency_fast_clients").at("p99_ms");
        cmp["slow_goodput_Bps" + suffix] = r.at("slow_goodput_Bps");
      }
      // The acceptance headline: the delay-gradient law holds slow clients
      // steady (fewer flaps) at equal-or-better fast-client latency.
      const double rmsa_flaps =
          by_law["rmsa"].at("tier_flaps").as_number();
      const double grad_flaps =
          by_law["gradient"].at("tier_flaps").as_number();
      cmp["flap_reduction_gradient_vs_rmsa"] =
          rmsa_flaps > 0 ? (rmsa_flaps - grad_flaps) / rmsa_flaps : 0.0;
      comparisons.as_array().push_back(cmp);
      for (const auto& law : laws) {
        rounds.as_array().push_back(std::move(by_law[law.name]));
      }
    } else {
      std::fprintf(stderr, "[ajax_fanout] %d clients for %.1f s...\n", n,
                   duration_s);
      rounds.as_array().push_back(run_round(*frontend, port, n, duration_s,
                                            slow_fraction, 0.0, false,
                                            frame_interval_s));
    }
    first_round = false;
  }

  Json report;
  report["bench"] = "ajax_fanout";
  report["scenario"] = scenario;
  report["frame_interval_s"] = frame_interval_s;
  // The server-side thread budget — constant in the client count: the
  // reactor loops, the HTTP handler workers, the hub fan-out workers, and
  // the monitor loop. Everything else in the process is bench clients.
  {
    const std::size_t reactors = std::max<std::size_t>(1, config.reactors);
    Json threads;
    threads["reactors"] = static_cast<double>(reactors);
    threads["http_workers"] = static_cast<double>(config.http_workers);
    threads["hub_workers"] = static_cast<double>(config.hub_workers);
    threads["monitor_loop"] = 1.0;
    threads["total"] = static_cast<double>(1 + reactors +
                                           config.http_workers +
                                           config.hub_workers);
    report["server_threads"] = threads;
  }
  report["rounds"] = rounds;
  if (!comparisons.as_array().empty()) report["comparisons"] = comparisons;
  std::printf("%s\n", report.dump(1).c_str());
  if (frontend) frontend->stop();
  return 0;
}
