// Fan-out load harness for the Ajax long-poll hub.
//
// Drives N in-process HTTP clients (N up to 512 and beyond) against one
// AjaxFrontEnd, every client long-polling /api/poll?since=N&delta=1 over a
// persistent keep-alive connection — the browser behaviour of Section 5.1 at
// a scale no browser farm provides. Reports, as JSON per client count:
// publish-to-delivery latency percentiles (how stale is a frame by the time
// the slowest-served client holds it), poll round-trip percentiles, frame
// throughput, gap and timeout counts. The scaling claim of the paper
// ("any number of clients") is measured here, not asserted.
//
// Usage: ajax_fanout [--clients 64,256,512] [--duration-s 4]
//                    [--slow-fraction 0.1] [--frame-interval-s 0.05]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "util/strings.hpp"
#include "web/frontend.hpp"
#include "web/http.hpp"

namespace {

using ricsa::util::Json;

double now_unix_ms() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::system_clock::now().time_since_epoch())
                 .count()) /
         1000.0;
}

struct ClientResult {
  std::vector<double> delivery_ms;  // publish stamp -> response received
  std::vector<double> rtt_ms;       // poll request -> response
  std::uint64_t frames = 0;
  std::uint64_t polls = 0;
  std::uint64_t gaps = 0;          // seq advanced by more than one
  std::uint64_t timeouts = 0;
  std::uint64_t errors = 0;
  int reconnects = 0;
};

double percentile(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

/// One emulated browser: long-poll loop with a private cursor. A "slow"
/// client sleeps between polls, the mix the hub must not let starve.
void client_loop(int port, double duration_s, double inter_poll_delay_s,
                 std::atomic<bool>& go, ClientResult& out) {
  ricsa::web::HttpClient http(port);
  // Join at the live head: replaying the retention window would count old
  // frames (with old publish stamps) as slow deliveries.
  std::uint64_t since = 0;
  try {
    const auto state = http.get("/api/state", 10.0);
    since = static_cast<std::uint64_t>(
        Json::parse(state.body).at("seq").as_number());
  } catch (const std::exception&) {
  }
  while (!go.load()) std::this_thread::yield();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(duration_s);
  while (std::chrono::steady_clock::now() < deadline) {
    const double t0 = now_unix_ms();
    ricsa::web::HttpClient::Response r;
    try {
      r = http.get("/api/poll?since=" + std::to_string(since) +
                       "&delta=1&timeout=2",
                   10.0);
    } catch (const std::exception&) {
      ++out.errors;
      continue;
    }
    const double t1 = now_unix_ms();
    ++out.polls;
    if (r.status != 200) {
      ++out.errors;
      continue;
    }
    Json body;
    try {
      body = Json::parse(r.body);
    } catch (const std::exception&) {
      ++out.errors;
      continue;
    }
    if (body.contains("timeout")) {
      ++out.timeouts;
      continue;
    }
    const auto seq = static_cast<std::uint64_t>(body.at("seq").as_number());
    if (seq <= since) continue;
    if (since != 0 && seq != since + 1) ++out.gaps;
    since = seq;
    ++out.frames;
    out.rtt_ms.push_back(t1 - t0);
    if (body.at("state").contains("published_ms")) {
      out.delivery_ms.push_back(t1 -
                                body.at("state").at("published_ms").as_number());
    }
    if (inter_poll_delay_s > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(inter_poll_delay_s));
    }
  }
  out.reconnects = http.reconnects();
}

Json run_round(ricsa::web::AjaxFrontEnd& frontend, int port, int n_clients,
               double duration_s, double slow_fraction) {
  const std::uint64_t seq_before = frontend.frame_seq();
  const auto stats_before = frontend.hub().stats();

  std::vector<ClientResult> results(static_cast<std::size_t>(n_clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_clients));
  std::atomic<bool> go{false};
  const int n_slow = static_cast<int>(slow_fraction * n_clients);
  for (int i = 0; i < n_clients; ++i) {
    // Slow consumers sleep ~3 frame intervals between polls.
    const double delay = i < n_slow ? 0.15 : 0.0;
    threads.emplace_back(client_loop, port, duration_s, delay, std::ref(go),
                         std::ref(results[static_cast<std::size_t>(i)]));
  }
  const double t0 = now_unix_ms();
  go.store(true);
  for (auto& t : threads) t.join();
  const double elapsed_s = (now_unix_ms() - t0) / 1000.0;

  ClientResult total;
  std::vector<double> fast_delivery_ms;  // prompt pollers only: the hub's
                                         // own fan-out latency, not the
                                         // client-chosen replay pace
  std::uint64_t min_frames = results.empty() ? 0 : results.front().frames;
  for (int i = 0; i < n_clients; ++i) {
    const ClientResult& r = results[static_cast<std::size_t>(i)];
    total.delivery_ms.insert(total.delivery_ms.end(), r.delivery_ms.begin(),
                             r.delivery_ms.end());
    if (i >= n_slow) {
      fast_delivery_ms.insert(fast_delivery_ms.end(), r.delivery_ms.begin(),
                              r.delivery_ms.end());
    }
    total.rtt_ms.insert(total.rtt_ms.end(), r.rtt_ms.begin(), r.rtt_ms.end());
    total.frames += r.frames;
    total.polls += r.polls;
    total.gaps += r.gaps;
    total.timeouts += r.timeouts;
    total.errors += r.errors;
    total.reconnects += std::max(0, r.reconnects);
    min_frames = std::min(min_frames, r.frames);
  }

  Json out;
  out["clients"] = n_clients;
  out["slow_clients"] = n_slow;
  out["duration_s"] = elapsed_s;
  out["frames_published"] =
      static_cast<double>(frontend.frame_seq() - seq_before);
  out["polls"] = static_cast<double>(total.polls);
  out["frames_delivered"] = static_cast<double>(total.frames);
  out["frames_delivered_min_per_client"] = static_cast<double>(min_frames);
  out["deliveries_per_sec"] =
      static_cast<double>(total.frames) / std::max(1e-9, elapsed_s);
  out["gaps"] = static_cast<double>(total.gaps);
  out["timeouts"] = static_cast<double>(total.timeouts);
  out["errors"] = static_cast<double>(total.errors);
  out["client_reconnects"] = static_cast<double>(total.reconnects);

  Json delivery;
  delivery["p50_ms"] = percentile(total.delivery_ms, 50);
  delivery["p90_ms"] = percentile(total.delivery_ms, 90);
  delivery["p99_ms"] = percentile(total.delivery_ms, 99);
  delivery["max_ms"] =
      total.delivery_ms.empty()
          ? 0.0
          : *std::max_element(total.delivery_ms.begin(), total.delivery_ms.end());
  out["delivery_latency"] = delivery;

  if (!fast_delivery_ms.empty()) {
    Json fast;
    fast["p50_ms"] = percentile(fast_delivery_ms, 50);
    fast["p90_ms"] = percentile(fast_delivery_ms, 90);
    fast["p99_ms"] = percentile(fast_delivery_ms, 99);
    fast["max_ms"] = *std::max_element(fast_delivery_ms.begin(),
                                       fast_delivery_ms.end());
    out["delivery_latency_fast_clients"] = fast;
  }

  Json rtt;
  rtt["p50_ms"] = percentile(total.rtt_ms, 50);
  rtt["p90_ms"] = percentile(total.rtt_ms, 90);
  rtt["p99_ms"] = percentile(total.rtt_ms, 99);
  out["poll_rtt"] = rtt;

  const auto stats_after = frontend.hub().stats();
  Json hub;
  hub["waiting_peak"] = static_cast<double>(stats_after.waiting_peak);
  hub["served"] = static_cast<double>(stats_after.served - stats_before.served);
  hub["hub_timeouts"] =
      static_cast<double>(stats_after.timeouts - stats_before.timeouts);
  out["hub"] = hub;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> client_counts = {64, 256, 512};
  double duration_s = 4.0;
  double slow_fraction = 0.0;
  double frame_interval_s = 0.05;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--clients") {
      client_counts.clear();
      for (const std::string& tok : ricsa::util::split(next(), ',')) {
        client_counts.push_back(std::atoi(tok.c_str()));
      }
    } else if (arg == "--duration-s") {
      duration_s = std::atof(next().c_str());
    } else if (arg == "--slow-fraction") {
      slow_fraction = std::atof(next().c_str());
    } else if (arg == "--frame-interval-s") {
      frame_interval_s = std::atof(next().c_str());
    } else {
      std::fprintf(stderr,
                   "usage: ajax_fanout [--clients 64,256,512] [--duration-s S]"
                   " [--slow-fraction F] [--frame-interval-s S]\n");
      return 2;
    }
  }

  ricsa::web::FrontEndConfig config;
  config.session.resolution = 16;  // small grid: the hub, not the sim, is under test
  config.session.cycles_per_frame = 1;
  config.frame_interval_s = frame_interval_s;
  config.frame_window = 256;
  config.hub_workers = 4;
  ricsa::web::AjaxFrontEnd frontend(config);
  const int port = frontend.start();
  std::fprintf(stderr, "[ajax_fanout] hub on port %d, frame interval %.0f ms\n",
               port, frame_interval_s * 1e3);

  // Let the monitor loop publish its first frames before measuring.
  while (frontend.frame_seq() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  Json rounds{ricsa::util::JsonArray{}};
  for (const int n : client_counts) {
    std::fprintf(stderr, "[ajax_fanout] %d clients for %.1f s...\n", n,
                 duration_s);
    rounds.as_array().push_back(
        run_round(frontend, port, n, duration_s, slow_fraction));
  }

  Json report;
  report["bench"] = "ajax_fanout";
  report["frame_interval_s"] = frame_interval_s;
  report["rounds"] = rounds;
  std::printf("%s\n", report.dump(1).c_str());
  frontend.stop();
  return 0;
}
