// Shared plumbing for the figure-reproduction harnesses: one-time cost-model
// calibration, paper-scale dataset properties extrapolated from real
// scaled-down volumes, and the canonical testbed pipelines.
#pragma once

#include <cstdio>
#include <string>

#include "cost/models.hpp"
#include "cost/network_profile.hpp"
#include "cost/pipeline_builder.hpp"
#include "data/generators.hpp"
#include "netsim/testbed.hpp"
#include "pipeline/pipeline.hpp"
#include "steering/wan_session.hpp"

namespace ricsa::bench {

/// Calibrate once per process on mid-size sample volumes (the paper's
/// "testing datasets sampled from various applications").
inline const cost::CostModels& models() {
  static const cost::CostModels m = [] {
    std::fprintf(stderr, "[bench] calibrating cost models...\n");
    static const data::ScalarVolume jet = data::make_jet(48, 48, 48);
    static const data::ScalarVolume rage = data::make_rage(48, 48, 48);
    static const data::ScalarVolume vis = data::make_viswoman(48, 48, 48);
    cost::CalibrationOptions opt;
    opt.isovalue_samples = 5;
    opt.raycast_size = 64;
    return cost::calibrate({&jet, &rage, &vis}, opt);
  }();
  return m;
}

/// Paper-scale dataset properties: measure a real 30%-scale volume of the
/// named dataset, then extrapolate blocks/dimensions to the full quoted
/// byte size (16 / 64 / 108 MB).
inline cost::DatasetProperties paper_properties(const std::string& name) {
  const data::DatasetSpec spec = data::dataset_spec(name);
  const data::ScalarVolume sample = data::make_dataset(name, 0.3);
  const auto measured =
      cost::dataset_properties(sample, spec.default_isovalue, 16);
  return cost::scale_properties(measured, spec.bytes);
}

/// The Section 5.3 isosurface pipeline for one dataset at paper scale.
inline pipeline::PipelineSpec paper_pipeline(const std::string& name) {
  cost::VizRequest request;
  request.technique = cost::VizRequest::Technique::kIsosurface;
  request.isovalue = data::dataset_spec(name).default_isovalue;
  request.image_width = 512;
  request.image_height = 512;
  return cost::build_pipeline(request, paper_properties(name), models());
}

/// Stable node ids of make_testbed() (creation order).
struct Ids {
  static constexpr int ornl = 0;
  static constexpr int lsu = 1;
  static constexpr int ut = 2;
  static constexpr int ncstate = 3;
  static constexpr int osu = 4;
  static constexpr int gatech = 5;
};

struct LoopOptions {
  std::optional<std::vector<int>> fixed_assignment;
  int data_source = Ids::gatech;
  bool packet_transport = true;
  std::uint64_t seed = 0x41ce5a;
  /// ParaView-style baseline knobs (Fig. 10): per-stage handshake cost,
  /// message inflation and module slowdown relative to RICSA's modules.
  double per_transfer_overhead_s = 0.0;
  double message_inflation = 1.0;
  double compute_inflation = 1.0;
  /// Skip the LSU central manager (ParaView has no such node).
  bool bypass_cm = false;
};

/// Run one WAN session for a dataset on a fresh testbed.
inline steering::WanResult run_loop(const std::string& dataset,
                                    const LoopOptions& options = {}) {
  netsim::TestbedOptions topt;
  topt.seed = options.seed;
  netsim::Testbed tb = netsim::make_testbed(topt);
  steering::WanSessionConfig config;
  config.client = tb.ornl;
  config.central_manager = options.bypass_cm ? tb.ornl : tb.lsu;
  config.data_source = options.data_source;
  config.profile = cost::NetworkProfile::from_network(*tb.net);
  config.spec = paper_pipeline(dataset);
  config.fixed_assignment = options.fixed_assignment;
  config.packet_transport = options.packet_transport;
  config.per_transfer_overhead_s = options.per_transfer_overhead_s;

  if (options.message_inflation != 1.0 || options.compute_inflation != 1.0) {
    // Rebuild the spec with inflated module costs / message sizes.
    std::vector<pipeline::ModuleSpec> modules = config.spec.modules();
    for (auto& m : modules) {
      m.complexity *= options.compute_inflation;
      if (m.fixed_output != 0) {
        m.fixed_output = static_cast<std::size_t>(
            static_cast<double>(m.fixed_output) * options.message_inflation);
      }
    }
    config.spec = pipeline::PipelineSpec(
        config.spec.name(),
        static_cast<std::size_t>(static_cast<double>(config.spec.source_bytes()) *
                                 options.message_inflation),
        std::move(modules));
  }
  return steering::run_wan_session(*tb.net, config);
}

}  // namespace ricsa::bench
