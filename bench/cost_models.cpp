// Cost-model validation (Section 4.4): predicted vs measured wall-clock
// times of the real visualization modules, for each of the three techniques
// the paper models (Eqs. 4-8), across datasets and parameters.
//
// The paper claims "with reasonable preprocessing overheads, our models
// provide quick and accurate run-time estimates of processing times"; here
// accuracy is quantified as the predicted/measured ratio. Calibration and
// validation use different volumes (held-out datasets and isovalues).
#include <cstdio>

#include "cost/models.hpp"
#include "cost/pipeline_builder.hpp"
#include "data/generators.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "viz/isosurface.hpp"
#include "viz/raycast.hpp"
#include "viz/streamline.hpp"

using namespace ricsa;

int main() {
  // Calibrate on jet+rage; validate on viswoman + unseen isovalues.
  std::fprintf(stderr, "[bench] calibrating...\n");
  const data::ScalarVolume cal_jet = data::make_jet(48, 48, 48);
  const data::ScalarVolume cal_rage = data::make_rage(48, 48, 48);
  cost::CalibrationOptions opt;
  opt.isovalue_samples = 6;
  opt.host_power = 1.0;  // validate against THIS machine's wall clock
  const cost::CostModels models = cost::calibrate({&cal_jet, &cal_rage}, opt);

  std::printf("Cost-model validation: predicted vs measured module times "
              "(this machine)\n\n");
  std::printf("%-42s %12s %12s %8s\n", "experiment", "predicted", "measured",
              "ratio");

  int checked = 0, within2 = 0, within4 = 0;
  const auto report = [&](const std::string& label, double predicted,
                          double measured) {
    const double ratio = measured > 0 ? predicted / measured : 0.0;
    ++checked;
    within2 += (ratio > 0.5 && ratio < 2.0);
    within4 += (ratio > 0.25 && ratio < 4.0);
    std::printf("%-42s %10.2f ms %10.2f ms %7.2fx\n", label.c_str(),
                predicted * 1e3, measured * 1e3, ratio);
  };

  // --- Isosurface extraction (Eq. 4/5) on held-out volumes/isovalues ------
  for (const auto& [name, scale] : std::vector<std::pair<std::string, double>>{
           {"viswoman", 0.22}, {"rage", 0.28}, {"jet", 0.35}}) {
    const data::ScalarVolume vol = data::make_dataset(name, scale, /*seed=*/99);
    const auto [lo, hi] = vol.min_max();
    for (const float frac : {0.35f, 0.6f}) {
      const float iso = lo + (hi - lo) * frac;
      const auto props = cost::dataset_properties(vol, iso, opt.block_size);
      const double predicted = models.isosurface.predict_extraction_s(
          props.active_blocks, props.cells_per_block);
      util::Stopwatch timer;
      viz::IsosurfaceOptions io;
      io.block_size = opt.block_size;
      const auto result = viz::extract_isosurface(vol, iso, io);
      const double measured = timer.elapsed();
      report(util::strprintf("isosurface %s iso=%.2f (%zu tris)", name.c_str(),
                             iso, result.stats.triangles),
             predicted, measured);
    }
  }

  // --- Ray casting (Eq. 7) -------------------------------------------------
  for (const int size : {64, 128}) {
    const data::ScalarVolume vol = data::make_viswoman(56, 56, 56, 7);
    viz::RayCastOptions rc_opt;
    rc_opt.width = size;
    rc_opt.height = size;
    const auto geom = viz::estimate_raycast_counts(56, 56, 56, rc_opt);
    const double predicted = models.raycast.predict_s(geom);
    const auto [lo, hi] = vol.min_max();
    const auto tf = viz::TransferFunction::preset(lo, hi);
    util::Stopwatch timer;
    viz::raycast(vol, tf, rc_opt);
    report(util::strprintf("raycast viswoman %dx%d (%zu samples)", size, size,
                           geom.samples),
           predicted, timer.elapsed());
  }

  // --- Streamlines (Eq. 8) -------------------------------------------------
  for (const int seeds_axis : {3, 5}) {
    const data::VectorVolume field = data::make_tornado(48);
    viz::StreamlineOptions sl;
    sl.max_steps = 300;
    const auto seeds = viz::grid_seeds(field, seeds_axis);
    util::Stopwatch timer;
    const auto set = viz::trace_streamlines(field, seeds, sl);
    const double measured = timer.elapsed();
    const double predicted = models.streamline.t_advection_s *
                             static_cast<double>(set.advection_steps);
    report(util::strprintf("streamline tornado %zu seeds (%zu steps)",
                           seeds.size(), set.advection_steps),
           predicted, measured);
  }

  std::printf("\n%d/%d predictions within 2x, %d/%d within 4x\n", within2,
              checked, within4, checked);
  const bool pass = within4 == checked && within2 >= checked * 2 / 3;
  std::printf("[%s] cost models give usable run-time estimates on held-out "
              "inputs\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
