// EPB estimation (Section 4.3, Eq. 3): active probe trains + linear
// regression per overlay link of the six-site testbed. Reports estimated
// effective path bandwidth vs the configured link bandwidth, the estimated
// minimum delay vs the configured propagation delay, and the regression
// quality ("the delay d(P, r) ... can be approximated by a linear model").
#include <cstdio>

#include "cost/network_profile.hpp"
#include "netsim/testbed.hpp"

using namespace ricsa;

int main() {
  netsim::Testbed tb = netsim::make_testbed();
  std::printf("EPB regression over every overlay link of the testbed\n\n");
  std::printf("%-22s %12s %12s %8s %10s %10s\n", "link", "epb (MB/s)",
              "raw (MB/s)", "ratio", "d0 est", "d0 true");

  transport::EpbOptions opt;
  // Probes must be large enough for the channel to reach steady state on
  // the fastest (10 MB/s) links; the measurement daemon keeps its channel
  // warm between probes.
  opt.probe_sizes = {512 * 1024, 2 * 1024 * 1024, 4 * 1024 * 1024,
                     8 * 1024 * 1024};
  opt.repeats = 1;
  opt.make_controller = [] {
    transport::AimdConfig cfg;
    cfg.initial_rate_Bps = 5e6;
    cfg.increase_Bps = 1.5e6;
    return std::make_unique<transport::AimdController>(cfg);
  };
  const auto measured = cost::NetworkProfile::measure(*tb.net, opt);

  int links = 0, sane = 0;
  for (const auto& [edge, estimate] : measured.links()) {
    const auto& truth = tb.net->link(edge.first, edge.second).config();
    const double ratio = estimate.epb_Bps / truth.bandwidth_Bps;
    ++links;
    // An EPB estimate is "sane" when it lands between 40% and 110% of raw
    // bandwidth (transport overhead keeps it below 1.0).
    const bool ok = ratio > 0.4 && ratio < 1.1;
    sane += ok;
    std::printf("%-10s -> %-9s %12.2f %12.2f %7.2f %8.1f ms %8.1f ms%s\n",
                measured.name(edge.first).c_str(),
                measured.name(edge.second).c_str(), estimate.epb_Bps / 1e6,
                truth.bandwidth_Bps / 1e6, ratio, estimate.min_delay_s * 1e3,
                truth.prop_delay_s * 1e3, ok ? "" : "  <-- off");
  }

  std::printf("\n%d/%d links estimated within the sane band\n", sane, links);
  const bool pass = sane == links;
  std::printf("[%s] active measurement recovers usable per-link EPB + d0 for "
              "the DP mapper\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
