// Fig. 10 reproduction: RICSA's optimal loop vs a ParaView-style
// client/render-server ("-crs") configuration on the identical node
// placement and datasets.
//
// Section 5.3.2: "our experiments involved running pvdataserver on the DS
// node at GaTech, pvrenderserver ... on the cluster-based CS node at UT, and
// pvclient at ORNL. Note that the CM node at LSU was not involved because
// ParaView does not yet employ such additional nodes." The performance gap
// the paper attributes to "higher processing and communication overhead
// incurred by visualization and network transfer functions used in ParaView"
// is modelled as: a per-stage connection/handshake cost, modest message
// inflation (VTK wire structures), and a module-generality slowdown.
//
// Expected shape: RICSA <= ParaView-crs on every dataset, with a visible but
// not catastrophic gap ("RICSA achieved comparable performances").
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace ricsa;
using bench::Ids;

int main() {
  const std::vector<std::string> datasets = {"jet", "rage", "viswoman"};

  std::printf("Fig. 10 — RICSA optimal loop vs ParaView -crs mode "
              "(virtual seconds)\n\n");
  std::printf("%-56s %10s %10s %14s\n", "", "Jet(16MB)", "Rage(64MB)",
              "Viswoman(108MB)");

  std::vector<double> ricsa_s, paraview_s;

  std::printf("%-56s", "RICSA optimal loop: ORNL-LSU-GaTech-UT-ORNL");
  for (const auto& dataset : datasets) {
    const auto result = bench::run_loop(dataset, {});
    ricsa_s.push_back(result.completed ? result.data_path_s : -1);
    std::printf(" %10.2f", ricsa_s.back());
    std::fflush(stdout);
  }
  std::printf("\n");

  std::printf("%-56s", "ParaView -crs mode: ORNL-UT-GaTech (client-render-server)");
  for (const auto& dataset : datasets) {
    bench::LoopOptions pv;
    // Same placement the optimizer chose, pinned: data server at GaTech,
    // render server at UT, client at ORNL.
    pv.fixed_assignment = std::vector<int>{Ids::gatech, Ids::gatech, Ids::ut,
                                           Ids::ut, Ids::ornl};
    pv.bypass_cm = true;             // no CM node in ParaView
    pv.per_transfer_overhead_s = 0.6;  // per-stage connection/handshake
    pv.message_inflation = 1.08;     // VTK wire structures
    pv.compute_inflation = 1.25;     // general-purpose module overhead
    const auto result = bench::run_loop(dataset, pv);
    paraview_s.push_back(result.completed ? result.data_path_s : -1);
    std::printf(" %10.2f", paraview_s.back());
    std::fflush(stdout);
  }
  std::printf("\n\nShape checks vs. the paper:\n");

  bool ricsa_wins = true;
  bool comparable = true;
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    if (ricsa_s[d] > paraview_s[d]) ricsa_wins = false;
    if (paraview_s[d] > 2.0 * ricsa_s[d]) comparable = false;
    std::printf("  %s: ParaView/RICSA = %.2fx\n", datasets[d].c_str(),
                paraview_s[d] / ricsa_s[d]);
  }
  std::printf("  [%s] RICSA <= ParaView-crs on every dataset\n",
              ricsa_wins ? "PASS" : "FAIL");
  std::printf("  [%s] performances remain comparable (< 2x apart)\n",
              comparable ? "PASS" : "FAIL");
  return (ricsa_wins && comparable) ? 0 : 1;
}
