// DP optimality & scaling (Section 4.5): the dynamic program of Eqs. 9/10
// must (a) return exactly the exhaustive-search optimum on every random
// instance, and (b) run in O(n * |E|) time — "which guarantees that our
// system scales well as the network size increases".
#include <cstdio>

#include "core/mapper.hpp"
#include "cost/network_profile.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"

using namespace ricsa;

namespace {

struct Instance {
  cost::NetworkProfile profile;
  core::MappingProblem problem;
  std::size_t edges = 0;
};

Instance random_instance(util::Xoshiro256& rng, int nodes, int modules,
                         double edge_prob) {
  Instance inst;
  for (int v = 0; v < nodes; ++v) {
    inst.profile.add_node("n" + std::to_string(v), rng.uniform(0.5, 8.0),
                          rng.bernoulli(0.7));
  }
  for (int v = 0; v + 1 < nodes; ++v) {
    inst.profile.set_link(v, v + 1, {rng.uniform(1e5, 1e7), rng.uniform(0, 0.05)});
    ++inst.edges;
  }
  for (int a = 0; a < nodes; ++a) {
    for (int b = 0; b < nodes; ++b) {
      if (a != b && !inst.profile.has_link(a, b) && rng.bernoulli(edge_prob)) {
        inst.profile.set_link(a, b, {rng.uniform(1e5, 1e7), rng.uniform(0, 0.05)});
        ++inst.edges;
      }
    }
  }
  inst.problem.source = 0;
  inst.problem.destination = nodes - 1;
  inst.problem.unit_compute.push_back(0.0);
  for (int m = 1; m < modules; ++m) {
    inst.problem.unit_compute.push_back(rng.uniform(0.0, 20.0));
    inst.problem.messages.push_back(static_cast<std::size_t>(rng.uniform(1e4, 5e7)));
  }
  inst.problem.allowed.assign(static_cast<std::size_t>(modules),
                              std::vector<bool>(static_cast<std::size_t>(nodes), true));
  for (int v = 0; v < nodes; ++v) {
    inst.problem.allowed[0][static_cast<std::size_t>(v)] = (v == 0);
    inst.problem.allowed[static_cast<std::size_t>(modules - 1)][static_cast<std::size_t>(v)] =
        (v == nodes - 1);
  }
  return inst;
}

}  // namespace

int main() {
  // --- (a) Optimality vs exhaustive on random instances -------------------
  util::Xoshiro256 rng(0xD9);
  int agree = 0, feasible = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const int nodes = static_cast<int>(rng.uniform_int(4, 8));
    const int modules = static_cast<int>(rng.uniform_int(3, 6));
    Instance inst = random_instance(rng, nodes, modules, 0.3);
    const auto dp = core::DpMapper().solve(inst.profile, inst.problem);
    const auto ex = core::ExhaustiveMapper().solve(inst.profile, inst.problem);
    if (dp.feasible != ex.feasible) continue;
    if (!dp.feasible || std::abs(dp.delay_s - ex.delay_s) <=
                            1e-9 * std::max(1.0, ex.delay_s)) {
      ++agree;
    }
    feasible += dp.feasible;
  }
  std::printf("DP vs exhaustive search on %d random instances: %d agree "
              "(%d feasible)\n", trials, agree, feasible);
  const bool optimal = agree == trials;
  std::printf("[%s] dynamic program returns the global optimum on every "
              "instance\n\n", optimal ? "PASS" : "FAIL");

  // --- (b) Runtime scaling: time / (n * |E|) should be ~constant ----------
  std::printf("%8s %8s %10s %14s %18s\n", "|V|", "modules", "|E|",
              "solve time", "time / (n*|E|)");
  double first_unit = 0.0, last_unit = 0.0;
  for (const int nodes : {16, 32, 64, 128, 256}) {
    for (const int modules : {5, 10}) {
      util::Xoshiro256 gen(static_cast<std::uint64_t>(nodes * 131 + modules));
      Instance inst = random_instance(gen, nodes, modules, 0.15);
      // Warm + measure best of 3.
      double best = 1e9;
      for (int rep = 0; rep < 3; ++rep) {
        util::Stopwatch timer;
        const auto mapping = core::DpMapper().solve(inst.profile, inst.problem);
        best = std::min(best, timer.elapsed());
        if (!mapping.feasible) std::printf("  (infeasible?)");
      }
      const double unit =
          best / (static_cast<double>(modules) * static_cast<double>(inst.edges));
      if (first_unit == 0.0) first_unit = unit;
      last_unit = unit;
      std::printf("%8d %8d %10zu %11.3f ms %15.1f ns\n", nodes, modules,
                  inst.edges, best * 1e3, unit * 1e9);
    }
  }
  // O(n|E|) check: the per-(n*|E|) cost must not blow up with size (allow a
  // generous 8x band for cache effects).
  const bool linear = last_unit < 8.0 * first_unit;
  std::printf("\n[%s] runtime grows linearly in n * |E| (paper's O(n x |E|) "
              "guarantee)\n", linear ? "PASS" : "FAIL");
  return (optimal && linear) ? 0 : 1;
}
