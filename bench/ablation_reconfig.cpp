// Ablation: adaptive reconfiguration (Section 5.3.2, footnote 3).
//
// "The mapping scheme is adaptively re-configured during runtime in response
// to drastic network or host condition changes." We degrade the optimal
// loop's GaTech->UT link mid-session and compare the next frame's delay
// (a) keeping the stale VRT vs (b) letting the CM re-run the DP.
#include <cstdio>

#include "bench_common.hpp"
#include "core/reconfigure.hpp"

using namespace ricsa;
using bench::Ids;

int main() {
  const char* names[] = {"ORNL", "LSU", "UT", "NCState", "OSU", "GaTech"};
  std::printf("Ablation: adaptive VRT reconfiguration under link "
              "degradation (viswoman, 108 MB)\n\n");

  // Baseline frame on the healthy testbed.
  const auto before = bench::run_loop("viswoman", {});
  std::printf("healthy network, DP mapping:       %8.2f s   path ", before.data_path_s);
  for (std::size_t i = 0; i < before.vrt.path().size(); ++i) {
    std::printf("%s%s", i ? "-" : "", names[before.vrt.path()[i]]);
  }
  std::printf("\n");

  // Degrade GaTech->UT to 1 MB/s and re-run both ways. A fresh testbed with
  // the link degraded models "after the change"; the stale assignment is the
  // healthy-network optimum pinned.
  const auto run_degraded = [&](std::optional<std::vector<int>> fixed) {
    netsim::Testbed tb = netsim::make_testbed();
    tb.net->link(tb.gatech, tb.ut).set_bandwidth(1e6);
    tb.net->link(tb.ut, tb.gatech).set_bandwidth(1e6);
    steering::WanSessionConfig config;
    config.client = tb.ornl;
    config.central_manager = tb.lsu;
    config.data_source = tb.gatech;
    config.profile = cost::NetworkProfile::from_network(*tb.net);
    config.spec = bench::paper_pipeline("viswoman");
    config.fixed_assignment = std::move(fixed);
    return steering::run_wan_session(*tb.net, config);
  };

  const auto stale = run_degraded(before.assignment);
  std::printf("degraded link, stale VRT kept:     %8.2f s\n", stale.data_path_s);

  const auto reconfigured = run_degraded(std::nullopt);
  std::printf("degraded link, CM re-runs the DP:  %8.2f s   path ",
              reconfigured.data_path_s);
  for (std::size_t i = 0; i < reconfigured.vrt.path().size(); ++i) {
    std::printf("%s%s", i ? "-" : "", names[reconfigured.vrt.path()[i]]);
  }
  std::printf("\n");

  // The Reconfigurator makes the same call from profiles alone.
  {
    netsim::Testbed tb = netsim::make_testbed();
    const auto spec = bench::paper_pipeline("viswoman");
    auto problem = core::MappingProblem::from_pipeline(
        spec, cost::NetworkProfile::from_network(*tb.net), tb.gatech, tb.ornl);
    core::Reconfigurator reconf(problem);
    reconf.update(cost::NetworkProfile::from_network(*tb.net));
    tb.net->link(tb.gatech, tb.ut).set_bandwidth(1e6);
    const auto outcome =
        reconf.update(cost::NetworkProfile::from_network(*tb.net));
    std::printf("\nReconfigurator: change detected = %s, VRT version = %u\n",
                outcome.changed ? "yes" : "no", reconf.version());
  }

  const double saving = stale.data_path_s - reconfigured.data_path_s;
  const bool pass = reconfigured.data_path_s < stale.data_path_s * 0.8 &&
                    stale.completed && reconfigured.completed;
  std::printf("\nre-routing saves %.1f s per frame (%.1fx faster)\n", saving,
              stale.data_path_s / reconfigured.data_path_s);
  std::printf("[%s] adaptive reconfiguration recovers most of the lost "
              "performance\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
