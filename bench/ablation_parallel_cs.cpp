// Ablation: cluster (MPI-style) computing service vs plain PC, as a function
// of dataset size.
//
// Section 5.3.1: "the advantage of utilizing an intermediate MPI module is
// not very obvious for small datasets because of the overhead incurred by
// data distributions and communications among cluster nodes. ... for
// datasets of several or dozens of MBytes, a simple PC-PC configuration ...
// might be sufficient ... However, for large-scale scientific datasets,
// parallel processing modules have become an indispensable tool."
//
// We sweep the dataset size and report the delay of the cluster loop
// (GaTech -> UT -> ORNL, paying UT's distribution overhead) against the
// PC-PC loop (GaTech -> ORNL), locating the crossover.
#include <cstdio>

#include "bench_common.hpp"

using namespace ricsa;
using bench::Ids;

namespace {

/// Build a jet-flavoured pipeline (compact plume surface — the sparse end of
/// the workload spectrum, where fixed overheads matter most) at an
/// arbitrary byte size.
pipeline::PipelineSpec pipeline_at(std::size_t bytes) {
  const data::ScalarVolume sample = data::make_dataset("jet", 0.3);
  const auto measured = cost::dataset_properties(sample, 0.9f, 16);
  const auto props = cost::scale_properties(measured, bytes);
  cost::VizRequest request;
  request.isovalue = 0.9f;
  request.image_width = 512;
  request.image_height = 512;
  return cost::build_pipeline(request, props, bench::models());
}

double run_with(std::size_t bytes, const std::vector<int>& assignment) {
  netsim::Testbed tb = netsim::make_testbed();
  steering::WanSessionConfig config;
  config.client = tb.ornl;
  config.central_manager = tb.lsu;
  config.data_source = tb.gatech;
  config.profile = cost::NetworkProfile::from_network(*tb.net);
  config.spec = pipeline_at(bytes);
  config.fixed_assignment = assignment;
  const auto result = steering::run_wan_session(*tb.net, config);
  return result.completed ? result.data_path_s : -1.0;
}

}  // namespace

int main() {
  std::printf("Ablation: cluster CS (UT, 8 workers, %.1f s distribution "
              "overhead) vs PC-PC, by dataset size\n\n",
              0.9);
  std::printf("%10s %14s %14s %10s\n", "size", "cluster loop", "PC-PC loop",
              "winner");

  const std::vector<int> cluster = {Ids::gatech, Ids::gatech, Ids::ut, Ids::ut,
                                    Ids::ornl};
  const std::vector<int> pcpc = {Ids::gatech, Ids::gatech, Ids::gatech,
                                 Ids::ornl, Ids::ornl};

  double small_ratio = 0, large_ratio = 0;
  for (const double mb : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 108.0}) {
    const auto bytes = static_cast<std::size_t>(mb * 1e6);
    const double cl = run_with(bytes, cluster);
    const double pc = run_with(bytes, pcpc);
    const double ratio = pc / cl;
    if (mb == 1.0) small_ratio = ratio;
    if (mb == 108.0) large_ratio = ratio;
    std::printf("%8.0fMB %12.2f s %12.2f s %8.2fx %10s\n", mb, cl, pc, ratio,
                pc > cl ? "cluster" : "PC-PC");
  }

  std::printf("\nPC-PC/cluster ratio: %.2fx at 1 MB -> %.2fx at 108 MB\n",
              small_ratio, large_ratio);
  // Paper's qualitative claim: the advantage is "not very obvious" for small
  // datasets (the distribution overhead eats it) but grows decisive with
  // size. Accept: near-parity (< 1.25x) at 1 MB, clear (> 1.3x) at 108 MB,
  // monotone growth between the endpoints.
  const bool pass = small_ratio < 1.25 && large_ratio > 1.3 &&
                    large_ratio > small_ratio;
  std::printf("[%s] cluster advantage negligible at ~MB scale, grows "
              "decisive with dataset size\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
